//! Block transform and quantisation: the DSP core of a real encoder.
//!
//! x264 transforms each residual macroblock with an integer DCT, quantises
//! the coefficients and entropy-codes them. The scheduling paper does not
//! depend on the exact transform, but a credible encoder substrate should
//! exercise the same kind of per-block compute, so this module provides an
//! 8×8 type-II DCT (and its inverse), a JPEG-style quantisation matrix
//! scaled by a quality factor, and the zigzag scan that orders coefficients
//! for run-length/entropy coding.
//!
//! All arithmetic is `f64` internally but the public interface works on
//! `i16` residual samples and `i32` coefficients, matching
//! [`crate::encoder`]'s residual representation.

/// Side length of a transform block.
pub const BLOCK: usize = 8;
/// Number of samples in a block.
pub const BLOCK_LEN: usize = BLOCK * BLOCK;

/// The base luminance quantisation matrix (ITU-T T.81 Annex K), scaled by
/// the quality factor in [`quant_matrix`].
const BASE_QUANT: [u16; BLOCK_LEN] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// The zigzag scan order for an 8×8 block (row-major index at each scan
/// position), identical to JPEG/MPEG.
pub const ZIGZAG: [usize; BLOCK_LEN] = [
    0, 1, 8, 16, 9, 2, 3, 10, //
    17, 24, 32, 25, 18, 11, 4, 5, //
    12, 19, 26, 33, 40, 48, 41, 34, //
    27, 20, 13, 6, 7, 14, 21, 28, //
    35, 42, 49, 56, 57, 50, 43, 36, //
    29, 22, 15, 23, 30, 37, 44, 51, //
    58, 59, 52, 45, 38, 31, 39, 46, //
    53, 60, 61, 54, 47, 55, 62, 63,
];

fn dct_basis(k: usize, n: usize) -> f64 {
    let ck = if k == 0 {
        (1.0 / BLOCK as f64).sqrt()
    } else {
        (2.0 / BLOCK as f64).sqrt()
    };
    ck * ((std::f64::consts::PI * (2.0 * n as f64 + 1.0) * k as f64) / (2.0 * BLOCK as f64)).cos()
}

/// Forward 8×8 DCT-II of a residual block (row-major, 64 samples).
pub fn forward_dct(block: &[i16; BLOCK_LEN]) -> [f64; BLOCK_LEN] {
    let mut out = [0.0f64; BLOCK_LEN];
    for u in 0..BLOCK {
        for v in 0..BLOCK {
            let mut acc = 0.0;
            for y in 0..BLOCK {
                for x in 0..BLOCK {
                    acc += block[y * BLOCK + x] as f64 * dct_basis(u, y) * dct_basis(v, x);
                }
            }
            out[u * BLOCK + v] = acc;
        }
    }
    out
}

/// Inverse 8×8 DCT (DCT-III), rounding back to `i16` samples.
pub fn inverse_dct(coeffs: &[f64; BLOCK_LEN]) -> [i16; BLOCK_LEN] {
    let mut out = [0i16; BLOCK_LEN];
    for y in 0..BLOCK {
        for x in 0..BLOCK {
            let mut acc = 0.0;
            for u in 0..BLOCK {
                for v in 0..BLOCK {
                    acc += coeffs[u * BLOCK + v] * dct_basis(u, y) * dct_basis(v, x);
                }
            }
            out[y * BLOCK + x] = acc.round().clamp(i16::MIN as f64, i16::MAX as f64) as i16;
        }
    }
    out
}

/// The quantisation matrix for `quality` in `1..=100` (higher = finer).
pub fn quant_matrix(quality: u8) -> [u16; BLOCK_LEN] {
    let q = quality.clamp(1, 100) as f64;
    let scale = if q < 50.0 {
        5000.0 / q
    } else {
        200.0 - 2.0 * q
    };
    let mut m = [0u16; BLOCK_LEN];
    for (dst, &base) in m.iter_mut().zip(BASE_QUANT.iter()) {
        let v = ((base as f64 * scale + 50.0) / 100.0).floor();
        *dst = v.clamp(1.0, 255.0) as u16;
    }
    m
}

/// A transformed and quantised block in zigzag order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantisedBlock {
    /// Quantised coefficients in zigzag order.
    pub coeffs: [i32; BLOCK_LEN],
    /// The quality the block was quantised at (needed to dequantise).
    pub quality: u8,
}

impl QuantisedBlock {
    /// Number of trailing zero coefficients in zigzag order — the measure
    /// entropy coders exploit and a convenient proxy for how compressible
    /// the block is.
    pub fn trailing_zeros(&self) -> usize {
        self.coeffs.iter().rev().take_while(|&&c| c == 0).count()
    }

    /// The DC (mean) coefficient.
    pub fn dc(&self) -> i32 {
        self.coeffs[0]
    }
}

/// Transforms and quantises a residual block.
pub fn encode_block(block: &[i16; BLOCK_LEN], quality: u8) -> QuantisedBlock {
    let dct = forward_dct(block);
    let q = quant_matrix(quality);
    let mut coeffs = [0i32; BLOCK_LEN];
    for (scan_pos, &src) in ZIGZAG.iter().enumerate() {
        coeffs[scan_pos] = (dct[src] / q[src] as f64).round() as i32;
    }
    QuantisedBlock {
        coeffs,
        quality: quality.clamp(1, 100),
    }
}

/// Dequantises and inverse-transforms a block back to residual samples.
pub fn decode_block(block: &QuantisedBlock) -> [i16; BLOCK_LEN] {
    let q = quant_matrix(block.quality);
    let mut dct = [0.0f64; BLOCK_LEN];
    for (scan_pos, &dst) in ZIGZAG.iter().enumerate() {
        dct[dst] = block.coeffs[scan_pos] as f64 * q[dst] as f64;
    }
    inverse_dct(&dct)
}

/// Splits a `width`-pixel-wide residual row (of macroblock height) into 8×8
/// blocks (padding the right edge with zeros when `width` is not a multiple
/// of 8) and encodes each block.
pub fn encode_residual_row(residual: &[i16], width: usize, quality: u8) -> Vec<QuantisedBlock> {
    assert!(width > 0, "row width must be positive");
    let height = residual.len() / width;
    let blocks_x = width.div_ceil(BLOCK);
    let blocks_y = height.div_ceil(BLOCK);
    let mut out = Vec::with_capacity(blocks_x * blocks_y);
    for by in 0..blocks_y {
        for bx in 0..blocks_x {
            let mut block = [0i16; BLOCK_LEN];
            for y in 0..BLOCK {
                for x in 0..BLOCK {
                    let sy = by * BLOCK + y;
                    let sx = bx * BLOCK + x;
                    if sy < height && sx < width {
                        block[y * BLOCK + x] = residual[sy * width + sx];
                    }
                }
            }
            out.push(encode_block(&block, quality));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_block(seed: u64, range: i16) -> [i16; BLOCK_LEN] {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = [0i16; BLOCK_LEN];
        for v in b.iter_mut() {
            *v = rng.gen_range(-range..=range);
        }
        b
    }

    #[test]
    fn dct_of_constant_block_is_pure_dc() {
        let block = [100i16; BLOCK_LEN];
        let dct = forward_dct(&block);
        // DC = 100 * 8 (the 2-D normalisation gives N for a constant block).
        assert!((dct[0] - 800.0).abs() < 1e-6, "dc {dc}", dc = dct[0]);
        for (i, &c) in dct.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-6, "AC coefficient {i} should be zero, got {c}");
        }
    }

    #[test]
    fn dct_roundtrips_exactly_without_quantisation() {
        for seed in 0..8u64 {
            let block = random_block(seed, 255);
            let back = inverse_dct(&forward_dct(&block));
            assert_eq!(back, block, "seed {seed}");
        }
    }

    #[test]
    fn quantised_roundtrip_error_is_bounded_and_shrinks_with_quality() {
        let block = random_block(3, 64);
        let err = |quality: u8| -> f64 {
            let decoded = decode_block(&encode_block(&block, quality));
            let sse: f64 = block
                .iter()
                .zip(decoded.iter())
                .map(|(&a, &b)| ((a - b) as f64).powi(2))
                .sum();
            (sse / BLOCK_LEN as f64).sqrt()
        };
        let coarse = err(10);
        let medium = err(50);
        let fine = err(95);
        assert!(fine <= medium + 1e-9);
        assert!(medium <= coarse + 1e-9);
        // At quality 95 the RMS error is a few quantisation steps at most.
        assert!(fine < 10.0, "rms error at q95 was {fine}");
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; BLOCK_LEN];
        for &idx in &ZIGZAG {
            assert!(!seen[idx], "duplicate zigzag index {idx}");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // The scan starts at DC and its first step goes right then down-left.
        assert_eq!(&ZIGZAG[..4], &[0, 1, 8, 16]);
    }

    #[test]
    fn smooth_blocks_compress_better_than_noisy_blocks() {
        // A smooth gradient concentrates energy in low frequencies, so after
        // quantisation it has far more trailing zeros than white noise.
        let mut smooth = [0i16; BLOCK_LEN];
        for y in 0..BLOCK {
            for x in 0..BLOCK {
                smooth[y * BLOCK + x] = (4 * x + 2 * y) as i16;
            }
        }
        let noisy = random_block(9, 120);
        let smooth_q = encode_block(&smooth, 50);
        let noisy_q = encode_block(&noisy, 50);
        assert!(
            smooth_q.trailing_zeros() > noisy_q.trailing_zeros(),
            "smooth {} vs noisy {}",
            smooth_q.trailing_zeros(),
            noisy_q.trailing_zeros()
        );
    }

    #[test]
    fn quant_matrix_is_monotone_in_quality() {
        let coarse = quant_matrix(10);
        let fine = quant_matrix(90);
        assert!(coarse.iter().zip(fine.iter()).all(|(c, f)| c >= f));
        assert!(fine.iter().all(|&v| v >= 1));
    }

    #[test]
    fn residual_row_blocking_covers_all_samples() {
        // A 20-pixel-wide, 16-pixel-tall row needs 3×2 blocks with padding.
        let width = 20usize;
        let height = 16usize;
        let residual: Vec<i16> = (0..width * height).map(|i| (i % 17) as i16 - 8).collect();
        let blocks = encode_residual_row(&residual, width, 80);
        assert_eq!(blocks.len(), 3 * 2);
        // Decoding the first block reproduces the top-left 8×8 region closely.
        let decoded = decode_block(&blocks[0]);
        for y in 0..BLOCK {
            for x in 0..BLOCK {
                let orig = residual[y * width + x];
                let got = decoded[y * BLOCK + x];
                assert!((orig - got).abs() <= 12, "({x},{y}): {orig} vs {got}");
            }
        }
    }

    #[test]
    fn dc_tracks_block_mean() {
        let block = [40i16; BLOCK_LEN];
        let q = encode_block(&block, 100);
        // DC of a constant-40 block is 320 before quantisation; the DC
        // quantiser at quality 100 is 1, so the coefficient is ~320.
        assert!((q.dc() - 320).abs() <= 1, "dc {}", q.dc());
    }
}
