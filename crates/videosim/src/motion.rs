//! Block motion estimation over macroblocks.
//!
//! x264's P-frame encoding searches the previous reference frame for the
//! best-matching block within a motion-vector window; the window's vertical
//! extent `w` is exactly the stage-skipping offset of the paper's Figure 2
//! (line 17). [`crate::encoder`] performs a simplified row-level search;
//! this module provides the macroblock-level machinery of a real encoder —
//! full search and the cheaper diamond search over 16×16 macroblocks — so
//! that the substrate's per-row cost model and the examples can be driven by
//! genuine motion estimation.

use crate::frame::Frame;

/// Macroblock side length in pixels.
pub const MB_SIZE: usize = 16;

/// A motion vector in pixels (x: right positive, y: down positive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MotionVector {
    /// Horizontal displacement.
    pub dx: i32,
    /// Vertical displacement.
    pub dy: i32,
}

/// The outcome of a motion search for one macroblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotionMatch {
    /// The chosen motion vector.
    pub mv: MotionVector,
    /// The sum of absolute differences at that vector.
    pub sad: u64,
    /// How many candidate positions were evaluated (the work done).
    pub positions_checked: usize,
}

/// Sum of absolute differences between the `MB_SIZE`×`MB_SIZE` block of
/// `current` at `(cx, cy)` and the block of `reference` at
/// `(cx + mv.dx, cy + mv.dy)`. Out-of-frame reference samples are treated as
/// mid-gray (128), matching [`crate::encoder`]'s edge handling.
pub fn block_sad(
    current: &Frame,
    reference: &Frame,
    cx: usize,
    cy: usize,
    mv: MotionVector,
) -> u64 {
    let mut sad = 0u64;
    for y in 0..MB_SIZE {
        for x in 0..MB_SIZE {
            let sy = cy + y;
            let sx = cx + x;
            if sy >= current.height || sx >= current.width {
                continue;
            }
            let cur = current.pixels[sy * current.width + sx] as i64;
            let ry = sy as i64 + mv.dy as i64;
            let rx = sx as i64 + mv.dx as i64;
            let refv = if ry < 0
                || rx < 0
                || ry >= reference.height as i64
                || rx >= reference.width as i64
            {
                128
            } else {
                reference.pixels[ry as usize * reference.width + rx as usize] as i64
            };
            sad += (cur - refv).unsigned_abs();
        }
    }
    sad
}

/// Exhaustive full search within `±range` pixels in both directions.
pub fn full_search(
    current: &Frame,
    reference: &Frame,
    cx: usize,
    cy: usize,
    range: i32,
) -> MotionMatch {
    let mut best = MotionMatch {
        mv: MotionVector::default(),
        sad: block_sad(current, reference, cx, cy, MotionVector::default()),
        positions_checked: 1,
    };
    for dy in -range..=range {
        for dx in -range..=range {
            if dx == 0 && dy == 0 {
                continue;
            }
            let mv = MotionVector { dx, dy };
            let sad = block_sad(current, reference, cx, cy, mv);
            best.positions_checked += 1;
            if sad < best.sad
                || (sad == best.sad
                    && (dx.abs() + dy.abs()) < (best.mv.dx.abs() + best.mv.dy.abs()))
            {
                best.mv = mv;
                best.sad = sad;
            }
        }
    }
    best
}

/// Diamond search: the standard two-pattern gradient-descent search (large
/// diamond until the centre is best, then one small-diamond refinement).
/// Checks far fewer positions than [`full_search`] and finds the same motion
/// for well-behaved content, but may land in a local minimum.
pub fn diamond_search(
    current: &Frame,
    reference: &Frame,
    cx: usize,
    cy: usize,
    range: i32,
) -> MotionMatch {
    const LARGE: [(i32, i32); 8] = [
        (0, -2),
        (1, -1),
        (2, 0),
        (1, 1),
        (0, 2),
        (-1, 1),
        (-2, 0),
        (-1, -1),
    ];
    const SMALL: [(i32, i32); 4] = [(0, -1), (1, 0), (0, 1), (-1, 0)];

    let mut centre = MotionVector::default();
    let mut best_sad = block_sad(current, reference, cx, cy, centre);
    let mut checked = 1usize;

    loop {
        let mut improved = false;
        for &(dx, dy) in &LARGE {
            let cand = MotionVector {
                dx: (centre.dx + dx).clamp(-range, range),
                dy: (centre.dy + dy).clamp(-range, range),
            };
            if cand == centre {
                continue;
            }
            let sad = block_sad(current, reference, cx, cy, cand);
            checked += 1;
            if sad < best_sad {
                best_sad = sad;
                centre = cand;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    for &(dx, dy) in &SMALL {
        let cand = MotionVector {
            dx: (centre.dx + dx).clamp(-range, range),
            dy: (centre.dy + dy).clamp(-range, range),
        };
        if cand == centre {
            continue;
        }
        let sad = block_sad(current, reference, cx, cy, cand);
        checked += 1;
        if sad < best_sad {
            best_sad = sad;
            centre = cand;
        }
    }
    MotionMatch {
        mv: centre,
        sad: best_sad,
        positions_checked: checked,
    }
}

/// Estimates motion for every macroblock of macroblock-row `mb_row` of
/// `current` against `reference`, using diamond search. Returns one match
/// per macroblock, left to right.
pub fn estimate_row_motion(
    current: &Frame,
    reference: &Frame,
    mb_row: usize,
    range: i32,
) -> Vec<MotionMatch> {
    let cy = mb_row * MB_SIZE;
    let mbs_x = current.width / MB_SIZE;
    (0..mbs_x)
        .map(|mbx| diamond_search(current, reference, mbx * MB_SIZE, cy, range))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameType, VideoSource};

    fn test_frame(index: u64) -> Frame {
        let mut src = VideoSource::new(index + 1, 64, 64, 4, 0).with_motion(3.0);
        let mut frame = None;
        for _ in 0..=index {
            frame = src.next_frame();
        }
        frame.expect("source produces the requested frame")
    }

    /// Builds a frame that is `reference` translated by (dx, dy), filling
    /// uncovered pixels with mid-gray.
    fn translated(reference: &Frame, dx: i32, dy: i32) -> Frame {
        let mut pixels = vec![128u8; reference.pixels.len()];
        for y in 0..reference.height {
            for x in 0..reference.width {
                let sy = y as i32 - dy;
                let sx = x as i32 - dx;
                if sy >= 0
                    && sx >= 0
                    && (sy as usize) < reference.height
                    && (sx as usize) < reference.width
                {
                    pixels[y * reference.width + x] =
                        reference.pixels[sy as usize * reference.width + sx as usize];
                }
            }
        }
        Frame {
            index: reference.index + 1,
            frame_type: FrameType::P,
            width: reference.width,
            height: reference.height,
            pixels,
        }
    }

    #[test]
    fn identical_frames_have_zero_motion_and_zero_sad() {
        let frame = test_frame(0);
        for (cx, cy) in [(0, 0), (16, 16), (32, 48)] {
            let full = full_search(&frame, &frame, cx, cy, 4);
            assert_eq!(full.mv, MotionVector::default());
            assert_eq!(full.sad, 0);
            let diamond = diamond_search(&frame, &frame, cx, cy, 4);
            assert_eq!(diamond.mv, MotionVector::default());
            assert_eq!(diamond.sad, 0);
        }
    }

    #[test]
    fn full_search_recovers_a_known_translation() {
        let reference = test_frame(0);
        let current = translated(&reference, 3, -2);
        // An interior macroblock (away from the gray border) must find the
        // exact inverse translation with zero SAD.
        let m = full_search(&current, &reference, 32, 32, 5);
        assert_eq!(m.mv, MotionVector { dx: -3, dy: 2 });
        assert_eq!(m.sad, 0);
    }

    #[test]
    fn diamond_search_matches_full_search_on_smooth_motion() {
        let reference = test_frame(0);
        let current = translated(&reference, 2, 1);
        let full = full_search(&current, &reference, 32, 16, 6);
        let diamond = diamond_search(&current, &reference, 32, 16, 6);
        assert_eq!(full.mv, diamond.mv);
        assert_eq!(full.sad, diamond.sad);
        assert!(
            diamond.positions_checked < full.positions_checked,
            "diamond {} should check fewer positions than full {}",
            diamond.positions_checked,
            full.positions_checked
        );
    }

    #[test]
    fn full_search_never_worse_than_zero_vector() {
        let a = test_frame(0);
        let b = test_frame(1);
        for (cx, cy) in [(0, 0), (16, 32), (48, 48)] {
            let zero = block_sad(&b, &a, cx, cy, MotionVector::default());
            let m = full_search(&b, &a, cx, cy, 4);
            assert!(m.sad <= zero);
        }
    }

    #[test]
    fn search_respects_the_range_bound() {
        let a = test_frame(0);
        let b = test_frame(2);
        for range in [1i32, 3, 7] {
            let m = full_search(&b, &a, 16, 16, range);
            assert!(m.mv.dx.abs() <= range && m.mv.dy.abs() <= range);
            let d = diamond_search(&b, &a, 16, 16, range);
            assert!(d.mv.dx.abs() <= range && d.mv.dy.abs() <= range);
        }
    }

    #[test]
    fn row_motion_produces_one_match_per_macroblock() {
        let a = test_frame(0);
        let b = test_frame(1);
        let matches = estimate_row_motion(&b, &a, 1, 4);
        assert_eq!(matches.len(), a.width / MB_SIZE);
        assert!(matches.iter().all(|m| m.positions_checked >= 1));
    }

    #[test]
    fn full_search_position_count_is_the_window_area() {
        let a = test_frame(0);
        let m = full_search(&a, &a, 0, 0, 3);
        assert_eq!(m.positions_checked, 7 * 7);
    }
}
