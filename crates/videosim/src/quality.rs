//! Distortion and quality metrics for encoded video.
//!
//! The benchmark harness never compares absolute bit-rates with the paper
//! (the substrate is synthetic), but the examples and tests need an
//! objective way to check that the encoder's rate/quality behaviour is
//! sane: lower quantisation must give lower distortion, P-frames of
//! low-motion content must cost fewer bits than I-frames, and so on. This
//! module provides the standard metrics — SAD, MSE and PSNR — over whole
//! frames and macroblock rows.

use crate::frame::{Frame, MB_ROW_HEIGHT};

/// Sum of absolute differences between two equally-sized sample slices.
pub fn sad(a: &[u8], b: &[u8]) -> u64 {
    assert_eq!(a.len(), b.len(), "SAD requires equally sized inputs");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x as i64 - y as i64).unsigned_abs())
        .sum()
}

/// Mean squared error between two equally-sized sample slices.
pub fn mse(a: &[u8], b: &[u8]) -> f64 {
    assert_eq!(a.len(), b.len(), "MSE requires equally sized inputs");
    if a.is_empty() {
        return 0.0;
    }
    let sse: f64 = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum();
    sse / a.len() as f64
}

/// Peak signal-to-noise ratio in decibels for 8-bit samples. Returns
/// `f64::INFINITY` for identical inputs.
pub fn psnr(a: &[u8], b: &[u8]) -> f64 {
    let m = mse(a, b);
    if m == 0.0 {
        f64::INFINITY
    } else {
        10.0 * ((255.0f64 * 255.0) / m).log10()
    }
}

/// Frame-level PSNR.
pub fn frame_psnr(a: &Frame, b: &Frame) -> f64 {
    assert_eq!(a.width, b.width);
    assert_eq!(a.height, b.height);
    psnr(&a.pixels, &b.pixels)
}

/// Per-macroblock-row SAD between two frames, one value per row — the
/// content-dependent cost signal that makes x264's stages nonuniform.
pub fn row_sads(a: &Frame, b: &Frame) -> Vec<u64> {
    assert_eq!(a.width, b.width);
    assert_eq!(a.height, b.height);
    (0..a.rows())
        .map(|row| sad(a.row_pixels(row), b.row_pixels(row)))
        .collect()
}

/// A simple rate/distortion summary for an encoded frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateDistortion {
    /// Encoded payload size in bytes.
    pub bytes: usize,
    /// Total distortion (sum of absolute quantisation error).
    pub distortion: u64,
    /// Number of macroblock rows the frame was encoded as.
    pub rows: usize,
}

impl RateDistortion {
    /// Average bytes per macroblock row.
    pub fn bytes_per_row(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.bytes as f64 / self.rows as f64
        }
    }

    /// Average distortion per pixel for a frame of the given dimensions.
    pub fn distortion_per_pixel(&self, width: usize) -> f64 {
        let pixels = self.rows * MB_ROW_HEIGHT * width;
        if pixels == 0 {
            0.0
        } else {
            self.distortion as f64 / pixels as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{encode_row, EncodeConfig, RowContext};
    use crate::frame::VideoSource;

    fn two_frames() -> (Frame, Frame) {
        let mut src = VideoSource::new(2, 64, 64, 0, 0).with_motion(2.0);
        let a = src.next_frame().unwrap();
        let b = src.next_frame().unwrap();
        (a, b)
    }

    #[test]
    fn identical_frames_have_zero_sad_and_infinite_psnr() {
        let (a, _) = two_frames();
        assert_eq!(sad(&a.pixels, &a.pixels), 0);
        assert_eq!(mse(&a.pixels, &a.pixels), 0.0);
        assert!(frame_psnr(&a, &a).is_infinite());
    }

    #[test]
    fn psnr_decreases_as_frames_diverge() {
        let mut src = VideoSource::new(6, 64, 64, 0, 0).with_motion(4.0);
        let base = src.next_frame().unwrap();
        let near = src.next_frame().unwrap();
        let far = {
            let mut f = None;
            for _ in 0..4 {
                f = src.next_frame();
            }
            f.unwrap()
        };
        let psnr_near = frame_psnr(&base, &near);
        let psnr_far = frame_psnr(&base, &far);
        assert!(
            psnr_near > psnr_far,
            "adjacent frames ({psnr_near:.2} dB) should be closer than distant ones ({psnr_far:.2} dB)"
        );
    }

    #[test]
    fn row_sads_cover_every_row_and_sum_to_frame_sad() {
        let (a, b) = two_frames();
        let rows = row_sads(&a, &b);
        assert_eq!(rows.len(), a.rows());
        assert_eq!(rows.iter().sum::<u64>(), sad(&a.pixels, &b.pixels));
    }

    #[test]
    fn finer_quantisation_reduces_distortion_but_costs_more_bytes() {
        let (a, b) = two_frames();
        let mut context = RowContext::default();
        context.reference_rows.push((1, a.row_pixels(1).to_vec()));
        let coarse = encode_row(
            &b,
            1,
            &context,
            &EncodeConfig {
                quant: 32,
                ..EncodeConfig::default()
            },
        );
        let fine = encode_row(
            &b,
            1,
            &context,
            &EncodeConfig {
                quant: 2,
                ..EncodeConfig::default()
            },
        );
        assert!(fine.distortion < coarse.distortion);
        assert!(fine.payload.len() >= coarse.payload.len());
    }

    #[test]
    fn rate_distortion_summary_math() {
        let rd = RateDistortion {
            bytes: 640,
            distortion: 1_024,
            rows: 4,
        };
        assert_eq!(rd.bytes_per_row(), 160.0);
        // 4 rows × 16 lines × 16 pixels wide = 1024 pixels.
        assert_eq!(rd.distortion_per_pixel(16), 1.0);
        let empty = RateDistortion {
            bytes: 0,
            distortion: 0,
            rows: 0,
        };
        assert_eq!(empty.bytes_per_row(), 0.0);
        assert_eq!(empty.distortion_per_pixel(16), 0.0);
    }

    #[test]
    #[should_panic(expected = "equally sized")]
    fn mismatched_lengths_panic() {
        sad(&[1, 2, 3], &[1, 2]);
    }
}
