//! Synthetic video frames and the frame-type decision.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The encoding type of a frame, as in H.264 / x264.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Intra-coded: depends only on previously encoded macroblocks of the
    /// same frame.
    I,
    /// Predicted: may depend on nearby macroblocks of nearby preceding
    /// frames up to the most recent I-frame.
    P,
    /// Bidirectional: may also depend on the next I- or P-frame; buffered
    /// and encoded after it.
    B,
}

/// A synthetic grayscale video frame divided into macroblock rows.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame index in display order.
    pub index: u64,
    /// Frame type (decided by [`VideoSource`]).
    pub frame_type: FrameType,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels (a multiple of 16, the macroblock height).
    pub height: usize,
    /// Row-major luma samples.
    pub pixels: Vec<u8>,
}

/// Height of a macroblock row in pixels.
pub const MB_ROW_HEIGHT: usize = 16;

impl Frame {
    /// Number of macroblock rows.
    pub fn rows(&self) -> usize {
        self.height / MB_ROW_HEIGHT
    }

    /// The pixel slice of macroblock row `row`.
    pub fn row_pixels(&self, row: usize) -> &[u8] {
        let start = row * MB_ROW_HEIGHT * self.width;
        let end = ((row + 1) * MB_ROW_HEIGHT * self.width).min(self.pixels.len());
        &self.pixels[start..end]
    }
}

/// A deterministic synthetic video source with an x264-like GOP structure.
#[derive(Debug, Clone)]
pub struct VideoSource {
    /// Number of frames the source will produce.
    pub num_frames: u64,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// An I-frame is produced every `gop` I/P slots (0 = only the first).
    pub gop: u64,
    /// Number of B-frames between consecutive I/P frames.
    pub bframes: u64,
    /// How much the scene moves per frame (drives P-frame encode cost).
    pub motion: f64,
    seed: u64,
    next: u64,
}

impl VideoSource {
    /// Creates a source with the given shape.
    pub fn new(num_frames: u64, width: usize, height: usize, gop: u64, bframes: u64) -> Self {
        VideoSource {
            num_frames,
            width,
            height: height - height % MB_ROW_HEIGHT,
            gop,
            bframes,
            motion: 2.5,
            seed: 0x264_264,
            next: 0,
        }
    }

    /// Overrides the motion magnitude.
    pub fn with_motion(mut self, motion: f64) -> Self {
        self.motion = motion;
        self
    }

    /// Total number of frames remaining.
    pub fn remaining(&self) -> u64 {
        self.num_frames.saturating_sub(self.next)
    }

    /// Produces the next frame, or `None` at end of stream.
    ///
    /// Frame types follow an x264-like pattern: the stream starts with an
    /// I-frame; every `bframes` B-frames are followed by a P-frame; every
    /// `gop`-th I/P slot is an I-frame.
    pub fn next_frame(&mut self) -> Option<Frame> {
        if self.next >= self.num_frames {
            return None;
        }
        let index = self.next;
        self.next += 1;

        let cycle = self.bframes + 1;
        let ip_slot = index / cycle;
        let in_cycle = index % cycle;
        let frame_type = if index == 0 {
            FrameType::I
        } else if in_cycle == 0 {
            if self.gop > 0 && ip_slot.is_multiple_of(self.gop) {
                FrameType::I
            } else {
                FrameType::P
            }
        } else {
            FrameType::B
        };

        Some(self.render(index, frame_type))
    }

    /// Renders the synthetic content of frame `index`: a couple of moving
    /// gradients plus noise, so consecutive frames are similar but not
    /// identical (P-frames find good but imperfect predictions).
    fn render(&self, index: u64, frame_type: FrameType) -> Frame {
        let mut noise = StdRng::seed_from_u64(self.seed ^ index.wrapping_mul(0x9E3779B97F4A7C15));
        let t = index as f64 * self.motion;
        let mut pixels = Vec::with_capacity(self.width * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let u = (x as f64 + t) / self.width as f64;
                let v = (y as f64 + 0.5 * t) / self.height as f64;
                let a = (u * std::f64::consts::TAU).sin();
                let b = (v * 3.0 * std::f64::consts::TAU).cos();
                let value = 128.0 + 60.0 * a + 40.0 * b + noise.gen_range(-8.0..8.0);
                pixels.push(value.clamp(0.0, 255.0) as u8);
            }
        }
        Frame {
            index,
            frame_type,
            width: self.width,
            height: self.height,
            pixels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_type_pattern_matches_gop_structure() {
        let mut src = VideoSource::new(20, 64, 64, 4, 1);
        let types: Vec<FrameType> =
            std::iter::from_fn(|| src.next_frame().map(|f| f.frame_type)).collect();
        assert_eq!(types.len(), 20);
        assert_eq!(types[0], FrameType::I);
        // With bframes=1: even indices are I/P slots, odd are B.
        for (i, t) in types.iter().enumerate() {
            if i == 0 {
                continue;
            }
            if i % 2 == 1 {
                assert_eq!(*t, FrameType::B, "frame {i}");
            } else {
                assert_ne!(*t, FrameType::B, "frame {i}");
            }
        }
        // Every 4th I/P slot is an I-frame.
        assert_eq!(types[8], FrameType::I);
        assert_eq!(types[2], FrameType::P);
    }

    #[test]
    fn frames_are_deterministic_and_divide_into_rows() {
        let mut a = VideoSource::new(3, 64, 48, 0, 0);
        let mut b = VideoSource::new(3, 64, 48, 0, 0);
        let fa = a.next_frame().unwrap();
        let fb = b.next_frame().unwrap();
        assert_eq!(fa.pixels, fb.pixels);
        assert_eq!(fa.rows(), 3);
        assert_eq!(fa.row_pixels(0).len(), 64 * MB_ROW_HEIGHT);
    }

    #[test]
    fn consecutive_frames_are_similar_but_not_identical() {
        let mut src = VideoSource::new(2, 64, 64, 0, 0);
        let f0 = src.next_frame().unwrap();
        let f1 = src.next_frame().unwrap();
        assert_ne!(f0.pixels, f1.pixels);
        let diff: u64 = f0
            .pixels
            .iter()
            .zip(f1.pixels.iter())
            .map(|(a, b)| (*a as i64 - *b as i64).unsigned_abs())
            .sum();
        let mean_diff = diff as f64 / f0.pixels.len() as f64;
        assert!(mean_diff < 60.0, "frames should be correlated: {mean_diff}");
        assert!(mean_diff > 0.5, "frames should differ: {mean_diff}");
    }

    #[test]
    fn source_produces_exactly_num_frames() {
        let mut src = VideoSource::new(7, 32, 32, 2, 2);
        let mut count = 0;
        while src.next_frame().is_some() {
            count += 1;
        }
        assert_eq!(count, 7);
        assert!(src.next_frame().is_none());
    }

    #[test]
    fn height_rounded_down_to_macroblock_multiple() {
        let src = VideoSource::new(1, 64, 50, 0, 0);
        assert_eq!(src.height, 48);
    }
}
