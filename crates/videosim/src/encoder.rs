//! Row-by-row encoding of I/P frames and whole-frame encoding of B-frames.
//!
//! The dependency structure mirrors x264's (paper, Section 3):
//!
//! * an **I-frame row** is predicted only from the row above it in the same
//!   frame (intra prediction);
//! * a **P-frame row** `x` is predicted from rows `x-w ..= x+w` of the
//!   previous reference (I/P) frame — this is why the pipeline iteration for
//!   a P-frame must `pipe_wait` until the previous iteration has encoded
//!   `w` rows *past* the current row (the stage-skipping offset of Figure 2,
//!   line 17);
//! * a **B-frame** is predicted from the two surrounding reference frames
//!   and can be encoded entirely in parallel once both are done.
//!
//! The encoded output is a quantised residual stream plus the chosen motion
//! vectors; [`EncodedRow::distortion`] and byte size give the workload a
//! data-dependent cost and the tests a correctness handle.

use crate::frame::{Frame, FrameType, MB_ROW_HEIGHT};

/// Encoder tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EncodeConfig {
    /// Motion-vector search window, in macroblock rows (the paper's `w`).
    pub mv_row_window: usize,
    /// Quantisation step for residuals.
    pub quant: u8,
    /// Horizontal motion search range in pixels (wider = more work).
    pub search_range: usize,
}

impl Default for EncodeConfig {
    fn default() -> Self {
        EncodeConfig {
            mv_row_window: 1,
            quant: 8,
            search_range: 8,
        }
    }
}

/// The reference data a row encode needs from the previous reference frame:
/// the pixel rows within the motion window. Rows are owned copies so the
/// pipeline can hand them across iterations without lifetime entanglement.
#[derive(Debug, Clone, Default)]
pub struct RowContext {
    /// (macroblock row index, pixels) pairs from the reference frame.
    pub reference_rows: Vec<(usize, Vec<u8>)>,
}

/// The result of encoding one macroblock row.
#[derive(Debug, Clone)]
pub struct EncodedRow {
    /// Macroblock row index.
    pub row: usize,
    /// Quantised residual bytes (run-length coded).
    pub payload: Vec<u8>,
    /// Sum of absolute quantisation error, a quality proxy.
    pub distortion: u64,
    /// Chosen vertical motion offset in rows (0 for intra rows).
    pub mv_rows: i64,
}

fn quantise_residual(residual: &[i16], quant: u8) -> (Vec<u8>, u64) {
    let q = quant.max(1) as i16;
    let mut payload = Vec::with_capacity(residual.len() / 4);
    let mut distortion = 0u64;
    // Run-length encode the quantised values: (run of zeros, value) pairs.
    let mut zero_run = 0u32;
    for &r in residual {
        let quantised = r / q;
        distortion += (r - quantised * q).unsigned_abs() as u64;
        if quantised == 0 {
            zero_run += 1;
            continue;
        }
        payload.extend_from_slice(&zero_run.to_le_bytes()[..2]);
        payload.extend_from_slice(&quantised.to_le_bytes());
        zero_run = 0;
    }
    payload.extend_from_slice(&zero_run.to_le_bytes()[..2]);
    (payload, distortion)
}

/// Encodes macroblock row `row` of `frame`.
///
/// For P-frames, `context` must contain the reference-frame rows within the
/// motion window (`row - w ..= row + w`); for I-frames it is ignored.
pub fn encode_row(
    frame: &Frame,
    row: usize,
    context: &RowContext,
    config: &EncodeConfig,
) -> EncodedRow {
    let current = frame.row_pixels(row);
    match frame.frame_type {
        FrameType::I => encode_intra_row(frame, row, current, config),
        FrameType::P | FrameType::B => encode_inter_row(frame, row, current, context, config),
    }
}

fn encode_intra_row(
    frame: &Frame,
    row: usize,
    current: &[u8],
    config: &EncodeConfig,
) -> EncodedRow {
    // Intra prediction: predict each pixel from the one directly above
    // (previous line), the canonical "vertical" predictor.
    let width = frame.width;
    let mut residual = Vec::with_capacity(current.len());
    for (i, &p) in current.iter().enumerate() {
        let predictor = if i < width {
            if row == 0 {
                128
            } else {
                // Last line of the previous macroblock row.
                frame.row_pixels(row - 1)[(MB_ROW_HEIGHT - 1) * width + i % width] as i16
            }
        } else {
            current[i - width] as i16
        };
        residual.push(p as i16 - predictor);
    }
    let (payload, distortion) = quantise_residual(&residual, config.quant);
    EncodedRow {
        row,
        payload,
        distortion,
        mv_rows: 0,
    }
}

fn encode_inter_row(
    frame: &Frame,
    row: usize,
    current: &[u8],
    context: &RowContext,
    config: &EncodeConfig,
) -> EncodedRow {
    // Motion estimation: try every reference row in the window and a few
    // horizontal shifts; keep the predictor minimising the sum of absolute
    // differences.
    let width = frame.width;
    let mut best: Option<(u64, i64, isize)> = None; // (sad, row offset, x shift)
    for (ref_row, ref_pixels) in &context.reference_rows {
        for shift in -(config.search_range as isize)..=(config.search_range as isize) {
            let mut sad = 0u64;
            for y in 0..MB_ROW_HEIGHT {
                for x in 0..width {
                    let sx = x as isize + shift;
                    let ref_val = if sx < 0 || sx >= width as isize {
                        128
                    } else {
                        ref_pixels[y * width + sx as usize]
                    };
                    sad += (current[y * width + x] as i64 - ref_val as i64).unsigned_abs();
                }
            }
            let offset = *ref_row as i64 - row as i64;
            if best.map(|(s, _, _)| sad < s).unwrap_or(true) {
                best = Some((sad, offset, shift));
            }
        }
    }

    let (mv_rows, shift, predictor_row) = match best {
        Some((_, offset, shift)) => {
            let ref_idx = (row as i64 + offset) as usize;
            let pixels = context
                .reference_rows
                .iter()
                .find(|(r, _)| *r == ref_idx)
                .map(|(_, p)| p.clone())
                .unwrap_or_else(|| vec![128u8; current.len()]);
            (offset, shift, pixels)
        }
        None => (0, 0, vec![128u8; current.len()]),
    };

    let mut residual = Vec::with_capacity(current.len());
    for y in 0..MB_ROW_HEIGHT {
        for x in 0..width {
            let sx = x as isize + shift;
            let pred = if sx < 0 || sx >= width as isize {
                128i16
            } else {
                predictor_row[y * width + sx as usize] as i16
            };
            residual.push(current[y * width + x] as i16 - pred);
        }
    }
    let (payload, distortion) = quantise_residual(&residual, config.quant);
    EncodedRow {
        row,
        payload,
        distortion,
        mv_rows,
    }
}

/// Encodes a whole B-frame against its preceding reference frame (the
/// following reference is approximated by the same one; B-frames in this
/// substrate exist to reproduce the parallel `cilk_for` stage, not to model
/// bi-prediction precisely). Returns total payload bytes and distortion.
pub fn encode_bframe(frame: &Frame, reference: &Frame, config: &EncodeConfig) -> (usize, u64) {
    let rows = frame.rows();
    let mut bytes = 0usize;
    let mut distortion = 0u64;
    for row in 0..rows {
        let mut context = RowContext::default();
        let lo = row.saturating_sub(config.mv_row_window);
        let hi = (row + config.mv_row_window).min(reference.rows() - 1);
        for r in lo..=hi {
            context
                .reference_rows
                .push((r, reference.row_pixels(r).to_vec()));
        }
        let encoded = encode_inter_row(frame, row, frame.row_pixels(row), &context, config);
        bytes += encoded.payload.len();
        distortion += encoded.distortion;
    }
    (bytes, distortion)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::VideoSource;

    fn reference_context(reference: &Frame, row: usize, w: usize) -> RowContext {
        let mut ctx = RowContext::default();
        let lo = row.saturating_sub(w);
        let hi = (row + w).min(reference.rows() - 1);
        for r in lo..=hi {
            ctx.reference_rows
                .push((r, reference.row_pixels(r).to_vec()));
        }
        ctx
    }

    #[test]
    fn intra_rows_encode_without_reference() {
        let mut src = VideoSource::new(1, 64, 64, 0, 0);
        let frame = src.next_frame().unwrap();
        assert_eq!(frame.frame_type, FrameType::I);
        for row in 0..frame.rows() {
            let encoded = encode_row(
                &frame,
                row,
                &RowContext::default(),
                &EncodeConfig::default(),
            );
            assert_eq!(encoded.row, row);
            assert!(!encoded.payload.is_empty());
            assert_eq!(encoded.mv_rows, 0);
        }
    }

    #[test]
    fn p_rows_find_good_predictions_in_reference() {
        let mut src = VideoSource::new(2, 64, 64, 0, 0).with_motion(1.0);
        let reference = src.next_frame().unwrap();
        let mut frame = src.next_frame().unwrap();
        frame.frame_type = FrameType::P;
        let config = EncodeConfig::default();

        // Compare inter coding against intra coding of the same row: with a
        // correlated reference, motion compensation produces a smaller
        // payload on average.
        let mut inter_bytes = 0usize;
        let mut intra_bytes = 0usize;
        for row in 0..frame.rows() {
            let ctx = reference_context(&reference, row, config.mv_row_window);
            inter_bytes += encode_row(&frame, row, &ctx, &config).payload.len();
            let mut as_intra = frame.clone();
            as_intra.frame_type = FrameType::I;
            intra_bytes += encode_row(&as_intra, row, &RowContext::default(), &config)
                .payload
                .len();
        }
        assert!(
            inter_bytes < intra_bytes,
            "inter {inter_bytes} should beat intra {intra_bytes}"
        );
    }

    #[test]
    fn perfect_prediction_gives_empty_residuals() {
        // Encoding a frame against itself must find a zero-motion perfect
        // match, so every quantised residual is zero.
        let mut src = VideoSource::new(1, 32, 32, 0, 0);
        let mut frame = src.next_frame().unwrap();
        frame.frame_type = FrameType::P;
        let config = EncodeConfig::default();
        for row in 0..frame.rows() {
            let ctx = reference_context(&frame, row, 0);
            let encoded = encode_row(&frame, row, &ctx, &config);
            assert_eq!(encoded.mv_rows, 0);
            // Payload is just the trailing zero-run marker.
            assert!(
                encoded.payload.len() <= 2,
                "payload {}",
                encoded.payload.len()
            );
        }
    }

    #[test]
    fn wider_motion_window_never_hurts_distortion() {
        let mut src = VideoSource::new(2, 64, 64, 0, 0).with_motion(4.0);
        let reference = src.next_frame().unwrap();
        let mut frame = src.next_frame().unwrap();
        frame.frame_type = FrameType::P;
        let config = EncodeConfig::default();
        let mut narrow_total = 0u64;
        let mut wide_total = 0u64;
        for row in 0..frame.rows() {
            let narrow = encode_row(&frame, row, &reference_context(&reference, row, 0), &config);
            let wide = encode_row(&frame, row, &reference_context(&reference, row, 2), &config);
            narrow_total += narrow.distortion + narrow.payload.len() as u64;
            wide_total += wide.distortion + wide.payload.len() as u64;
        }
        assert!(wide_total <= narrow_total);
    }

    #[test]
    fn bframe_encoding_produces_output_for_every_row() {
        let mut src = VideoSource::new(4, 48, 48, 2, 1);
        let reference = src.next_frame().unwrap();
        let bframe = src.next_frame().unwrap();
        assert_eq!(bframe.frame_type, FrameType::B);
        let (bytes, _distortion) = encode_bframe(&bframe, &reference, &EncodeConfig::default());
        assert!(bytes > 0);
    }

    #[test]
    fn quantisation_strength_trades_size_for_distortion() {
        let mut src = VideoSource::new(1, 64, 64, 0, 0);
        let frame = src.next_frame().unwrap();
        let coarse = EncodeConfig {
            quant: 32,
            ..Default::default()
        };
        let fine = EncodeConfig {
            quant: 2,
            ..Default::default()
        };
        let row = 1;
        let coarse_row = encode_row(&frame, row, &RowContext::default(), &coarse);
        let fine_row = encode_row(&frame, row, &RowContext::default(), &fine);
        assert!(coarse_row.payload.len() <= fine_row.payload.len());
        assert!(coarse_row.distortion >= fine_row.distortion);
    }
}
