//! Generators for the dag families the paper uses.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::{NodeSpec, PipelineSpec};

/// The ferret-style SPS pipeline of Figure 1: `n` iterations of a serial
/// stage (work `s0`), a parallel stage (work `r`), and a serial stage
/// (work `s2`).
pub fn sps(n: usize, s0: u64, r: u64, s2: u64) -> PipelineSpec {
    let mut spec = PipelineSpec::new();
    for _ in 0..n {
        spec.push_iteration(vec![
            NodeSpec::wait(0, s0),
            NodeSpec::cont(1, r),
            NodeSpec::wait(2, s2),
        ]);
    }
    spec
}

/// The dedup-style SSPS pipeline of Figure 4: serial input, serial
/// deduplication, parallel compression, serial output.
pub fn ssps(n: usize, s0: u64, s1: u64, p2: u64, s3: u64) -> PipelineSpec {
    let mut spec = PipelineSpec::new();
    for _ in 0..n {
        spec.push_iteration(vec![
            NodeSpec::wait(0, s0),
            NodeSpec::wait(1, s1),
            NodeSpec::cont(2, p2),
            NodeSpec::wait(3, s3),
        ]);
    }
    spec
}

/// A uniform pipeline (Theorem 12): `n` iterations × `s` stages, every node
/// of identical weight `w`, all stages serial. Stage 0 is the control stage.
pub fn uniform(n: usize, s: usize, w: u64) -> PipelineSpec {
    let mut spec = PipelineSpec::new();
    for _ in 0..n {
        let nodes = (0..s as u64).map(|j| NodeSpec::wait(j, w)).collect();
        spec.push_iteration(nodes);
    }
    spec
}

/// A uniform pipeline whose inner stages are parallel (no cross edges),
/// bracketed by serial input/output stages — a generalised ferret shape.
pub fn uniform_sps(n: usize, inner_stages: usize, serial_w: u64, parallel_w: u64) -> PipelineSpec {
    let mut spec = PipelineSpec::new();
    for _ in 0..n {
        let mut nodes = vec![NodeSpec::wait(0, serial_w)];
        for j in 0..inner_stages as u64 {
            nodes.push(NodeSpec::cont(1 + j, parallel_w));
        }
        nodes.push(NodeSpec::wait(1 + inner_stages as u64, serial_w));
        spec.push_iteration(nodes);
    }
    spec
}

/// The x264-style dag of Figure 3.
///
/// Each iteration processes one I- or P-frame of `rows` macroblock rows.
/// Iteration `i` skips `w·i` stages on entry (the motion-vector window
/// offset), then processes its rows as a hybrid stage sequence: every row
/// node of a P-frame has a cross edge (`pipe_wait`), rows of an I-frame do
/// not (`pipe_continue`). After the rows, a parallel B-frame stage (weight
/// `b_work·bframes`) and a serial output stage follow. `i_every` controls
/// how often an I-frame appears (e.g. every 4th iteration).
#[allow(clippy::too_many_arguments)]
pub fn x264_dag(
    iterations: usize,
    rows: usize,
    row_work: u64,
    w: u64,
    i_every: usize,
    bframes: usize,
    b_work: u64,
    out_work: u64,
) -> PipelineSpec {
    let mut spec = PipelineSpec::new();
    // Large symbolic stage numbers, as in Figure 2 of the paper.
    let process_bframes: u64 = 1 << 40;
    let end: u64 = process_bframes + 1;
    for i in 0..iterations {
        let is_iframe = i_every != 0 && i % i_every == 0;
        let skip = w * i as u64;
        let mut nodes = vec![NodeSpec::wait(0, row_work)];
        for row in 0..rows as u64 {
            let stage = 1 + skip + row;
            let node = if is_iframe {
                NodeSpec::cont(stage, row_work)
            } else {
                NodeSpec::wait(stage, row_work)
            };
            // The first row node is entered with pipe_wait(1 + skip) in the
            // pseudocode regardless of frame type.
            let node = if row == 0 {
                NodeSpec::wait(stage, row_work)
            } else {
                node
            };
            nodes.push(node);
        }
        nodes.push(NodeSpec::cont(process_bframes, b_work * bframes as u64));
        nodes.push(NodeSpec::wait(end, out_work));
        spec.push_iteration(nodes);
    }
    spec
}

/// The triangular pipe-fib dag (Section 10): iteration `i` computes
/// `F_{i+2}` bit by bit; the number of stages grows with the iteration
/// index, so the dag is a triangle rather than a grid. `bits_per_stage`
/// coarsens the pipeline (`pipe-fib-256` uses 256).
pub fn pipe_fib(n: usize, bits_per_stage: usize, stage_work: u64) -> PipelineSpec {
    let mut spec = PipelineSpec::new();
    // Number of bits of F_{i+2} grows linearly (the golden ratio has
    // log2(phi) ≈ 0.694 bits per index).
    for i in 0..n {
        let bits = ((i + 2) as f64 * 0.6942419).ceil() as usize + 1;
        let stages = bits.div_ceil(bits_per_stage).max(1);
        let mut nodes = vec![NodeSpec::wait(0, stage_work)];
        for j in 0..stages as u64 {
            nodes.push(NodeSpec::wait(1 + j, stage_work));
        }
        spec.push_iteration(nodes);
    }
    spec
}

/// The pathological nonuniform unthrottled pipeline of Figure 10
/// (Theorem 13), parameterised by total work `t1` (approximately).
///
/// The dag has `(T1^{2/3} + T1^{1/3})/2` iterations arranged in clusters of
/// `T1^{1/3} + 1` consecutive iterations: each cluster has one *heavy*
/// iteration of work `T1^{2/3}` followed by `T1^{1/3}` *light* iterations of
/// work `T1^{1/3}` each. Each iteration is a unit-work serial control node
/// (the Stage-0 chain) followed by a **parallel** body node carrying the
/// iteration's weight: bodies of different iterations are independent, so
/// the unthrottled dag has parallelism ~`T1^{1/3}`, but achieving speedup
/// `ρ` requires ~`ρ·T1^{1/3}` iterations live at once — which is exactly
/// what a throttling scheduler with `K = o(T1^{1/3})` cannot provide
/// (Theorem 13).
pub fn pathological(t1: u64) -> PipelineSpec {
    let cube = (t1 as f64).powf(1.0 / 3.0).round().max(1.0) as u64;
    let heavy = (cube * cube).max(1);
    let light = cube.max(1);
    let cluster = cube as usize + 1;
    let clusters = ((cube * cube + cube) / 2 / cluster as u64).max(1) as usize;
    let mut spec = PipelineSpec::new();
    for _ in 0..clusters {
        // One heavy iteration...
        spec.push_iteration(vec![
            NodeSpec::wait(0, 1),
            NodeSpec::cont(1, heavy.saturating_sub(2).max(1)),
        ]);
        // ...followed by `cube` light iterations.
        for _ in 0..cluster - 1 {
            spec.push_iteration(vec![
                NodeSpec::wait(0, 1),
                NodeSpec::cont(1, light.saturating_sub(2).max(1)),
            ]);
        }
    }
    spec
}

/// A randomly perturbed pipeline used by property tests: `n` iterations,
/// random stage skipping, random serial/parallel decisions and random node
/// weights, all drawn from `seed` deterministically.
pub fn random(n: usize, max_stages: usize, max_work: u64, seed: u64) -> PipelineSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut spec = PipelineSpec::new();
    for _ in 0..n {
        let count = rng.gen_range(1..=max_stages.max(1));
        let mut stage = 0u64;
        let mut nodes = Vec::with_capacity(count);
        for c in 0..count {
            nodes.push(NodeSpec {
                stage,
                work: rng.gen_range(1..=max_work.max(1)),
                wait: c == 0 || rng.gen_bool(0.5),
            });
            stage += rng.gen_range(1..=3);
        }
        spec.push_iteration(nodes);
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_unthrottled;

    #[test]
    fn sps_dimensions() {
        let spec = sps(10, 1, 50, 1);
        assert_eq!(spec.num_iterations(), 10);
        assert_eq!(spec.num_nodes(), 30);
        assert_eq!(spec.work(), 10 * 52);
    }

    #[test]
    fn ssps_matches_dedup_shape() {
        let spec = ssps(5, 1, 2, 10, 1);
        assert_eq!(spec.num_nodes(), 20);
        // Stage 2 is the only parallel stage.
        for it in &spec.iterations {
            assert!(it[0].wait && it[1].wait && !it[2].wait && it[3].wait);
        }
    }

    #[test]
    fn uniform_is_a_grid() {
        let spec = uniform(7, 3, 5);
        assert_eq!(spec.num_nodes(), 21);
        assert_eq!(spec.max_stage(), 2);
        assert_eq!(spec.work(), 7 * 3 * 5);
    }

    #[test]
    fn x264_dag_skips_stages_per_iteration() {
        let spec = x264_dag(6, 4, 2, 1, 3, 2, 3, 1);
        assert_eq!(spec.num_iterations(), 6);
        // Iteration i's first row node is at stage 1 + w*i.
        for (i, it) in spec.iterations.iter().enumerate() {
            assert_eq!(it[1].stage, 1 + i as u64);
        }
        // The dag has decent parallelism despite the serial rows.
        let a = analyze_unthrottled(&spec);
        assert!(a.parallelism() > 1.0);
    }

    #[test]
    fn pipe_fib_is_triangular() {
        let spec = pipe_fib(100, 1, 1);
        let early = spec.iterations[5].len();
        let late = spec.iterations[95].len();
        assert!(late > early, "stage count must grow with iteration index");
        // Coarsening reduces the number of stages.
        let coarse = pipe_fib(100, 256, 1);
        assert!(coarse.iterations[95].len() < spec.iterations[95].len());
    }

    #[test]
    fn pathological_has_heavy_and_light_clusters() {
        let spec = pathological(1_000_000);
        assert!(spec.num_iterations() > 10);
        let works: Vec<u64> = spec
            .iterations
            .iter()
            .map(|it| it.iter().map(|n| n.work).sum())
            .collect();
        let max = *works.iter().max().unwrap();
        let min = *works.iter().min().unwrap();
        // Heavy iterations are much heavier than light ones (T1^{2/3} vs T1^{1/3}).
        assert!(max >= 50 * min, "heavy {max} vs light {min}");
        // Span is dominated by the serial control chain plus one heavy body:
        // far below the work, so the unthrottled dag has ample parallelism.
        let a = analyze_unthrottled(&spec);
        assert!(a.parallelism() > 3.0);
    }

    #[test]
    fn random_generator_is_deterministic_per_seed() {
        let a = random(20, 5, 50, 42);
        let b = random(20, 5, 50, 42);
        assert_eq!(a.work(), b.work());
        assert_eq!(a.num_nodes(), b.num_nodes());
        let c = random(20, 5, 50, 43);
        assert!(a.work() != c.work() || a.num_nodes() != c.num_nodes());
    }
}
