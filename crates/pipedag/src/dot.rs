//! Graphviz (DOT) export of pipeline dags.
//!
//! The paper presents its pipelines visually: Figure 1 (the ferret SPS
//! grid), Figure 3 (the x264 dag with stage skipping and null nodes) and
//! Figure 10 (the pathological nonuniform pipeline). This module renders a
//! [`PipelineSpec`] in the same visual vocabulary so that generated or
//! recorded dags can be inspected with `dot -Tsvg`:
//!
//! * one column (Graphviz `rank`) per iteration,
//! * stage edges drawn solid down each column,
//! * cross edges drawn solid between adjacent columns,
//! * the serial Stage-0 control chain drawn like any other cross edge,
//! * optional throttling edges drawn dashed,
//! * null nodes (skipped stages that a later cross edge collapses onto)
//!   drawn as points, as in Figure 3.

use crate::spec::PipelineSpec;
use std::fmt::Write as _;

/// Rendering options for [`to_dot`].
#[derive(Debug, Clone, Copy)]
pub struct DotOptions {
    /// Include throttling edges for this window (drawn dashed) if set.
    pub throttle: Option<usize>,
    /// Label each node with its work weight.
    pub show_work: bool,
    /// Render skipped stages that receive a collapsed cross edge as point
    /// nodes (Figure 3's null nodes).
    pub show_null_nodes: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            throttle: None,
            show_work: true,
            show_null_nodes: true,
        }
    }
}

fn node_name(iteration: usize, stage: u64) -> String {
    format!("n_{iteration}_{stage}")
}

fn null_name(iteration: usize, stage: u64) -> String {
    format!("null_{iteration}_{stage}")
}

/// Renders `spec` as a Graphviz digraph.
///
/// The output is deterministic (nodes and edges are emitted in iteration and
/// stage order), so it can be snapshot-tested and diffed.
pub fn to_dot(spec: &PipelineSpec, options: &DotOptions) -> String {
    let mut out = String::new();
    out.push_str("digraph pipeline {\n");
    out.push_str("  rankdir=TB;\n");
    out.push_str("  node [shape=circle, fontsize=10];\n");

    let n = spec.num_iterations();

    // Nodes, one subgraph (column) per iteration.
    for (i, nodes) in spec.iterations.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_iter{i} {{");
        let _ = writeln!(out, "    label=\"i={i}\";");
        out.push_str("    style=invis;\n");
        for node in nodes {
            let name = node_name(i, node.stage);
            let label = if options.show_work {
                format!("({i},{})\\nw={}", node.stage, node.work)
            } else {
                format!("({i},{})", node.stage)
            };
            let _ = writeln!(out, "    {name} [label=\"{label}\"];");
        }
        out.push_str("  }\n");
    }

    // Null nodes: a stage j in iteration i is a null node if iteration i has
    // no real node at stage j but iteration i+1 enters stage j with a
    // pipe_wait and collapses its cross edge onto an earlier node of i.
    let mut null_nodes: Vec<(usize, u64)> = Vec::new();
    if options.show_null_nodes {
        for i in 1..n {
            for node in &spec.iterations[i] {
                if node.wait
                    && spec.iterations[i - 1].iter().all(|p| p.stage != node.stage)
                    && spec.iterations[i - 1].iter().any(|p| p.stage < node.stage)
                {
                    null_nodes.push((i - 1, node.stage));
                }
            }
        }
        null_nodes.sort_unstable();
        null_nodes.dedup();
        for &(i, stage) in &null_nodes {
            let _ = writeln!(
                out,
                "  {} [shape=point, width=0.05, label=\"\"];",
                null_name(i, stage)
            );
        }
    }

    // Stage edges down each column.
    for (i, nodes) in spec.iterations.iter().enumerate() {
        for pair in nodes.windows(2) {
            let _ = writeln!(
                out,
                "  {} -> {};",
                node_name(i, pair[0].stage),
                node_name(i, pair[1].stage)
            );
        }
    }

    // Serial control chain between consecutive Stage-0 nodes.
    for i in 1..n {
        let prev0 = spec.iterations[i - 1][0].stage;
        let cur0 = spec.iterations[i][0].stage;
        let _ = writeln!(
            out,
            "  {} -> {} [constraint=false];",
            node_name(i - 1, prev0),
            node_name(i, cur0)
        );
    }

    // Cross edges (pipe_wait), routed through null nodes when the source
    // stage was skipped in the previous iteration.
    for i in 1..n {
        for node in &spec.iterations[i] {
            if !node.wait {
                continue;
            }
            let target = node_name(i, node.stage);
            let exact = spec.iterations[i - 1]
                .iter()
                .find(|p| p.stage == node.stage);
            if exact.is_some() {
                let _ = writeln!(
                    out,
                    "  {} -> {} [constraint=false];",
                    node_name(i - 1, node.stage),
                    target
                );
            } else if let Some(src) = spec.iterations[i - 1]
                .iter()
                .rfind(|p| p.stage < node.stage)
            {
                if options.show_null_nodes {
                    let null = null_name(i - 1, node.stage);
                    let _ = writeln!(
                        out,
                        "  {} -> {} [style=dotted];",
                        node_name(i - 1, src.stage),
                        null
                    );
                    let _ = writeln!(out, "  {null} -> {target} [constraint=false];");
                } else {
                    let _ = writeln!(
                        out,
                        "  {} -> {} [constraint=false];",
                        node_name(i - 1, src.stage),
                        target
                    );
                }
            }
        }
    }

    // Throttling edges (dashed): end of iteration i -> start of i + K.
    if let Some(k) = options.throttle {
        if k > 0 {
            for i in k..n {
                let donor = i - k;
                let last = spec.iterations[donor]
                    .last()
                    .expect("iterations are non-empty");
                let first = &spec.iterations[i][0];
                let _ = writeln!(
                    out,
                    "  {} -> {} [style=dashed, color=gray, constraint=false];",
                    node_name(donor, last.stage),
                    node_name(i, first.stage)
                );
            }
        }
    }

    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::spec::NodeSpec;

    #[test]
    fn sps_dag_renders_all_nodes_and_edges() {
        let spec = generators::sps(3, 1, 5, 1);
        let dot = to_dot(&spec, &DotOptions::default());
        assert!(dot.starts_with("digraph pipeline {"));
        assert!(dot.trim_end().ends_with('}'));
        // Every real node appears exactly once as a declaration.
        for i in 0..3 {
            for stage in 0..3u64 {
                assert!(
                    dot.contains(&format!("n_{i}_{stage} [label=")),
                    "missing node ({i},{stage})"
                );
            }
        }
        // An SPS pipeline has cross edges on stages 0 and 2 but not stage 1.
        assert!(dot.contains("n_0_2 -> n_1_2"));
        assert!(!dot.contains("n_0_1 -> n_1_1"));
    }

    #[test]
    fn throttling_edges_are_dashed_and_optional() {
        let spec = generators::sps(6, 1, 5, 1);
        let without = to_dot(&spec, &DotOptions::default());
        assert!(!without.contains("style=dashed"));
        let with = to_dot(
            &spec,
            &DotOptions {
                throttle: Some(2),
                ..DotOptions::default()
            },
        );
        assert!(with.contains("style=dashed"));
        // End of iteration 0 (stage 2) throttles the start of iteration 2.
        assert!(with.contains("n_0_2 -> n_2_0 [style=dashed"));
    }

    #[test]
    fn skipped_stages_produce_null_point_nodes() {
        // Iteration 0 has stages {0, 3}; iteration 1 waits on stage 2 which
        // iteration 0 skipped, so the dag must route through a null node.
        let mut spec = PipelineSpec::new();
        spec.push_iteration(vec![NodeSpec::wait(0, 1), NodeSpec::cont(3, 1)]);
        spec.push_iteration(vec![NodeSpec::wait(0, 1), NodeSpec::wait(2, 1)]);
        let dot = to_dot(&spec, &DotOptions::default());
        assert!(dot.contains("null_0_2 [shape=point"));
        assert!(dot.contains("n_0_0 -> null_0_2"));
        assert!(dot.contains("null_0_2 -> n_1_2"));

        let flat = to_dot(
            &spec,
            &DotOptions {
                show_null_nodes: false,
                ..DotOptions::default()
            },
        );
        assert!(!flat.contains("null_0_2"));
        assert!(flat.contains("n_0_0 -> n_1_2"));
    }

    #[test]
    fn output_is_deterministic() {
        let spec = generators::x264_dag(8, 4, 2, 1, 3, 2, 3, 1);
        let a = to_dot(&spec, &DotOptions::default());
        let b = to_dot(&spec, &DotOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn work_labels_can_be_hidden() {
        let spec = generators::sps(2, 1, 9, 1);
        let with = to_dot(&spec, &DotOptions::default());
        assert!(with.contains("w=9"));
        let without = to_dot(
            &spec,
            &DotOptions {
                show_work: false,
                ..DotOptions::default()
            },
        );
        assert!(!without.contains("w=9"));
    }
}
