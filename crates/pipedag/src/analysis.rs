//! Work/span analysis of pipeline dags (a Cilkview analogue).
//!
//! The paper's Section 1 analyses the ferret SPS pipeline in closed form
//! (work `n(r+2)`, span `n + r`, parallelism ≥ `r/2 + 1`) and Section 10
//! reports a measured parallelism of 7.4 for dedup. This module computes
//! those quantities for any [`PipelineSpec`] by dynamic programming over the
//! dag, optionally including the throttling edges that PIPER adds (the
//! Section 11 discussion and Theorems 12–13 are about exactly the difference
//! between the throttled and unthrottled span).

use crate::spec::PipelineSpec;

/// Work, span and derived quantities of a pipeline dag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagAnalysis {
    /// Total work `T_1` (sum of node weights).
    pub work: u64,
    /// Span `T_∞` (weight of the longest path).
    pub span: u64,
    /// Number of iterations `n`.
    pub iterations: usize,
    /// Number of real (non-null) nodes.
    pub nodes: usize,
}

impl DagAnalysis {
    /// Parallelism `T_1 / T_∞`, the maximum possible speedup.
    pub fn parallelism(&self) -> f64 {
        if self.span == 0 {
            0.0
        } else {
            self.work as f64 / self.span as f64
        }
    }
}

/// Analyses the dag including throttling edges for a window of `K`
/// iterations: the first node of iteration `i` additionally depends on the
/// completion of the last node of iteration `i - K`.
pub fn analyze(spec: &PipelineSpec, throttle: Option<usize>) -> DagAnalysis {
    let n = spec.num_iterations();
    // completion[i][idx] = earliest completion time of node idx of iteration
    // i on infinitely many processors = weight of the longest path ending at
    // that node.
    let mut completion: Vec<Vec<u64>> = Vec::with_capacity(n);
    let mut span = 0u64;

    for i in 0..n {
        let nodes = &spec.iterations[i];
        let mut row = Vec::with_capacity(nodes.len());
        for (idx, node) in nodes.iter().enumerate() {
            let mut start = 0u64;

            // Stage edge from the previous node of the same iteration.
            if idx > 0 {
                start = start.max(row[idx - 1]);
            }

            // The serial control chain: the first node of iteration i starts
            // after the first node of iteration i-1 completes (the paper's
            // Stage 0 / loop test is always serial).
            if idx == 0 && i > 0 {
                start = start.max(completion[i - 1][0]);
            }

            // Cross edge from the previous iteration (pipe_wait), collapsing
            // onto the last real node before a null node.
            if node.wait && i > 0 {
                if let Some(src) = spec.cross_edge_source(i, node.stage) {
                    start = start.max(completion[i - 1][src]);
                }
            }

            // Throttling edge: iteration i cannot start before iteration
            // i - K has fully completed.
            if idx == 0 {
                if let Some(k) = throttle {
                    if k > 0 && i >= k {
                        let donor = &completion[i - k];
                        if let Some(&last) = donor.last() {
                            start = start.max(last);
                        }
                    }
                }
            }

            let finish = start + node.work;
            span = span.max(finish);
            row.push(finish);
        }
        completion.push(row);
    }

    DagAnalysis {
        work: spec.work(),
        span,
        iterations: n,
        nodes: spec.num_nodes(),
    }
}

/// Analyses the unthrottled dag `Ĝ` (no throttling edges).
pub fn analyze_unthrottled(spec: &PipelineSpec) -> DagAnalysis {
    analyze(spec, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::spec::NodeSpec;

    /// Brute-force longest path via memoized recursion over an explicit edge
    /// list, used as an oracle for the DP.
    fn brute_force_span(spec: &PipelineSpec, throttle: Option<usize>) -> u64 {
        // Build explicit predecessor lists.
        let n = spec.num_iterations();
        let mut ids = Vec::new(); // (iteration, idx)
        for i in 0..n {
            for idx in 0..spec.iterations[i].len() {
                ids.push((i, idx));
            }
        }
        let index_of = |i: usize, idx: usize| -> usize {
            ids.iter().position(|&(a, b)| a == i && b == idx).unwrap()
        };
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); ids.len()];
        for &(i, idx) in &ids {
            let me = index_of(i, idx);
            let node = spec.iterations[i][idx];
            if idx > 0 {
                preds[me].push(index_of(i, idx - 1));
            }
            if idx == 0 && i > 0 {
                preds[me].push(index_of(i - 1, 0));
            }
            if node.wait && i > 0 {
                if let Some(src) = spec.cross_edge_source(i, node.stage) {
                    preds[me].push(index_of(i - 1, src));
                }
            }
            if idx == 0 {
                if let Some(k) = throttle {
                    if k > 0 && i >= k {
                        let last = spec.iterations[i - k].len() - 1;
                        preds[me].push(index_of(i - k, last));
                    }
                }
            }
        }
        // Longest path by DP in id order (ids are topologically sorted:
        // predecessors always have smaller iteration or smaller idx).
        let mut dist = vec![0u64; ids.len()];
        let mut best = 0;
        for v in 0..ids.len() {
            let (i, idx) = ids[v];
            let start = preds[v].iter().map(|&p| dist[p]).max().unwrap_or(0);
            dist[v] = start + spec.iterations[i][idx].work;
            best = best.max(dist[v]);
        }
        best
    }

    #[test]
    fn sps_pipeline_matches_paper_closed_form() {
        // Paper, Section 1: serial stages of unit work, parallel stage of
        // work r. T1 = n(r+2); the staircase span evaluates to n + r + 1
        // with the boundary convention used here (the paper states n + r).
        // The parallelism bound r/2 + 1 requires 1 << r <= n.
        let n = 500;
        let r = 200;
        let spec = generators::sps(n, 1, r, 1);
        let a = analyze_unthrottled(&spec);
        assert_eq!(a.work, (n as u64) * (r + 2));
        assert_eq!(a.span, n as u64 + r + 1);
        let parallelism = a.parallelism();
        assert!(
            parallelism >= r as f64 / 2.0,
            "parallelism {parallelism} should be at least r/2"
        );
    }

    #[test]
    fn dp_matches_brute_force_on_irregular_dags() {
        let mut spec = PipelineSpec::new();
        spec.push_iteration(vec![
            NodeSpec::wait(0, 3),
            NodeSpec::cont(2, 7),
            NodeSpec::wait(5, 2),
        ]);
        spec.push_iteration(vec![
            NodeSpec::wait(0, 1),
            NodeSpec::wait(3, 9),
            NodeSpec::wait(5, 4),
        ]);
        spec.push_iteration(vec![
            NodeSpec::wait(0, 2),
            NodeSpec::wait(2, 2),
            NodeSpec::cont(4, 8),
            NodeSpec::wait(6, 1),
        ]);
        spec.push_iteration(vec![NodeSpec::wait(0, 5), NodeSpec::wait(6, 5)]);
        for throttle in [None, Some(1), Some(2), Some(3)] {
            assert_eq!(
                analyze(&spec, throttle).span,
                brute_force_span(&spec, throttle),
                "throttle {throttle:?}"
            );
        }
    }

    #[test]
    fn randomized_dags_match_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..25 {
            let n = rng.gen_range(1..12);
            let mut spec = PipelineSpec::new();
            for _ in 0..n {
                let mut stage = 0u64;
                let mut nodes = Vec::new();
                let count = rng.gen_range(1..6);
                for c in 0..count {
                    nodes.push(NodeSpec {
                        stage,
                        work: rng.gen_range(1..20),
                        wait: c == 0 || rng.gen_bool(0.5),
                    });
                    stage += rng.gen_range(1..4);
                }
                spec.push_iteration(nodes);
            }
            for throttle in [None, Some(1), Some(2), Some(4)] {
                assert_eq!(
                    analyze(&spec, throttle).span,
                    brute_force_span(&spec, throttle)
                );
            }
        }
    }

    #[test]
    fn throttling_never_decreases_span() {
        let spec = generators::pathological(1_000_000);
        let unthrottled = analyze_unthrottled(&spec).span;
        for k in [64usize, 16, 4, 1] {
            let throttled = analyze(&spec, Some(k)).span;
            // Throttling only adds edges, so the span can only grow.
            assert!(throttled >= unthrottled, "K={k}");
        }
        // With K=1 the whole dag becomes a chain: span equals work.
        assert_eq!(analyze(&spec, Some(1)).span, spec.work());
    }

    #[test]
    fn parallelism_of_single_iteration_is_serial() {
        let mut spec = PipelineSpec::new();
        spec.push_iteration(vec![NodeSpec::wait(0, 4), NodeSpec::cont(1, 6)]);
        let a = analyze_unthrottled(&spec);
        assert_eq!(a.work, 10);
        assert_eq!(a.span, 10);
        assert!((a.parallelism() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_spec_is_degenerate() {
        let spec = PipelineSpec::new();
        let a = analyze_unthrottled(&spec);
        assert_eq!(a.work, 0);
        assert_eq!(a.span, 0);
        assert_eq!(a.parallelism(), 0.0);
    }

    #[test]
    fn uniform_pipeline_throttled_span_close_to_unthrottled() {
        // Theorem 12: for uniform pipelines, throttling with K = aP does not
        // hurt asymptotically. Check that the throttled span stays within a
        // small factor of the unthrottled span for a uniform SPS pipeline.
        let spec = generators::uniform(256, 4, 10);
        let unthrottled = analyze_unthrottled(&spec);
        let throttled = analyze(&spec, Some(32));
        assert!(throttled.span <= 3 * unthrottled.span);
    }
}
