//! Pipeline-dag modelling, work/span analysis and scheduler simulation.
//!
//! The paper reasons about pipeline programs through their **pipeline dag**
//! (Figure 1): a grid-like dag whose columns are iterations, whose rows are
//! stages, with *stage edges* down each column, optional *cross edges*
//! between corresponding stages of adjacent iterations, and *throttling
//! edges* from the end of iteration `i` to the start of iteration `i + K`.
//!
//! This crate provides that model as data:
//!
//! * [`spec`] — [`PipelineSpec`]: an explicit weighted pipeline dag, either
//!   generated synthetically or recorded from a real workload run.
//! * [`analysis`] — work, span and parallelism (a Cilkview analogue), with
//!   and without throttling edges, used to verify the paper's closed-form
//!   examples (Section 1) and to measure the parallelism of the PARSEC
//!   workloads (Section 10 reports 7.4 for dedup).
//! * [`generators`] — the dag families used throughout the paper: the SPS
//!   ferret pipeline, the SSPS dedup pipeline, uniform pipelines
//!   (Theorem 12), the x264 dag with stage skipping (Figure 3), the
//!   triangular pipe-fib dag, and the pathological nonuniform pipeline of
//!   Figure 10 (Theorem 13).
//! * [`simulator`] — a discrete-event simulator that executes a
//!   [`PipelineSpec`] on `P` virtual workers under several scheduling
//!   policies (PIPER-style bind-to-element with throttling, TBB-style
//!   construct-and-run with a token limit, and Pthreads-style bind-to-stage
//!   with bounded queues and oversubscription). The evaluation harness uses
//!   it to regenerate the *shape* of Figures 6–10 independently of how many
//!   physical cores the host machine has.

pub mod analysis;
pub mod burdened;
pub mod dot;
pub mod generators;
pub mod simulator;
pub mod spec;
pub mod validate;

pub use analysis::{analyze, analyze_unthrottled, DagAnalysis};
pub use burdened::{analyze_burdened, BurdenModel, BurdenedAnalysis, SpeedupEstimate};
pub use dot::{to_dot, DotOptions};
pub use simulator::{
    simulate_bind_to_stage, simulate_construct_and_run, simulate_piper, BindToStageConfig,
    SimResult,
};
pub use spec::{NodeSpec, PipelineSpec};
pub use validate::{classify_stages, signature, validate, StageClass, Violation};
