//! The explicit pipeline-dag representation.

/// One node `(i, j)` of a pipeline dag: stage `j` of iteration `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSpec {
    /// Stage number `j`. Stage numbers strictly increase within an
    /// iteration; gaps correspond to skipped (null) stages.
    pub stage: u64,
    /// The node's work (execution time in arbitrary units, e.g. nanoseconds
    /// when recorded from a real run).
    pub work: u64,
    /// Whether the node has an incoming cross edge from iteration `i-1`
    /// (i.e. it was entered with `pipe_wait`). Ignored for iteration 0.
    pub wait: bool,
}

impl NodeSpec {
    /// Convenience constructor for a node entered with `pipe_wait`.
    pub fn wait(stage: u64, work: u64) -> Self {
        NodeSpec {
            stage,
            work,
            wait: true,
        }
    }

    /// Convenience constructor for a node entered with `pipe_continue`.
    pub fn cont(stage: u64, work: u64) -> Self {
        NodeSpec {
            stage,
            work,
            wait: false,
        }
    }
}

/// A weighted pipeline dag: one column of nodes per iteration.
///
/// Stage 0 of each iteration is represented like every other node (it is by
/// construction serial: the model treats it as having an implicit cross edge
/// from the previous iteration's stage 0, matching the paper's requirement
/// that the loop test executes serially).
#[derive(Debug, Clone, Default)]
pub struct PipelineSpec {
    /// Node lists, one per iteration, each sorted by increasing stage.
    pub iterations: Vec<Vec<NodeSpec>>,
}

impl PipelineSpec {
    /// Creates an empty spec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an iteration given as a list of nodes. Panics if stages are
    /// not strictly increasing.
    pub fn push_iteration(&mut self, nodes: Vec<NodeSpec>) {
        assert!(!nodes.is_empty(), "an iteration needs at least one node");
        for pair in nodes.windows(2) {
            assert!(
                pair[0].stage < pair[1].stage,
                "stage numbers must strictly increase within an iteration"
            );
        }
        self.iterations.push(nodes);
    }

    /// Number of iterations (`n`).
    pub fn num_iterations(&self) -> usize {
        self.iterations.len()
    }

    /// Total number of (real) nodes.
    pub fn num_nodes(&self) -> usize {
        self.iterations.iter().map(|it| it.len()).sum()
    }

    /// The largest stage number appearing anywhere (the pipeline's "depth").
    pub fn max_stage(&self) -> u64 {
        self.iterations
            .iter()
            .flat_map(|it| it.iter().map(|n| n.stage))
            .max()
            .unwrap_or(0)
    }

    /// Total work `T_1`: the sum of all node weights.
    pub fn work(&self) -> u64 {
        self.iterations
            .iter()
            .flat_map(|it| it.iter().map(|n| n.work))
            .sum()
    }

    /// Index of the last node in iteration `i` whose stage is **strictly
    /// less than** `stage`, used to resolve cross edges whose nominal source
    /// `(i, stage)` is a null node: the paper collapses such edges onto the
    /// last real node before the null node.
    pub(crate) fn last_real_node_before(&self, iteration: usize, stage: u64) -> Option<usize> {
        let nodes = &self.iterations[iteration];
        let mut found = None;
        for (idx, n) in nodes.iter().enumerate() {
            if n.stage < stage {
                found = Some(idx);
            } else {
                break;
            }
        }
        found
    }

    /// Index of the node in iteration `i` with stage exactly `stage`, if it
    /// is a real (non-null) node.
    pub(crate) fn node_at_stage(&self, iteration: usize, stage: u64) -> Option<usize> {
        self.iterations[iteration]
            .iter()
            .position(|n| n.stage == stage)
    }

    /// The source node index in iteration `i-1` for a cross edge into
    /// `(i, stage)`: the node at `stage` if it exists, otherwise the last
    /// real node before it (null-node collapsing), otherwise `None`
    /// (the cross edge degenerates to nothing and the node only depends on
    /// its own iteration).
    pub(crate) fn cross_edge_source(&self, iteration: usize, stage: u64) -> Option<usize> {
        if iteration == 0 {
            return None;
        }
        let prev = iteration - 1;
        self.node_at_stage(prev, stage)
            .or_else(|| self.last_real_node_before(prev, stage))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_spec() -> PipelineSpec {
        let mut spec = PipelineSpec::new();
        spec.push_iteration(vec![
            NodeSpec::wait(0, 1),
            NodeSpec::cont(1, 10),
            NodeSpec::wait(2, 1),
        ]);
        spec.push_iteration(vec![
            NodeSpec::wait(0, 1),
            NodeSpec::cont(1, 10),
            NodeSpec::wait(2, 1),
        ]);
        spec
    }

    #[test]
    fn work_is_sum_of_weights() {
        let spec = simple_spec();
        assert_eq!(spec.work(), 24);
        assert_eq!(spec.num_nodes(), 6);
        assert_eq!(spec.num_iterations(), 2);
        assert_eq!(spec.max_stage(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn non_increasing_stages_rejected() {
        let mut spec = PipelineSpec::new();
        spec.push_iteration(vec![NodeSpec::wait(0, 1), NodeSpec::wait(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_iteration_rejected() {
        let mut spec = PipelineSpec::new();
        spec.push_iteration(vec![]);
    }

    #[test]
    fn cross_edge_source_resolves_null_nodes() {
        let mut spec = PipelineSpec::new();
        // Iteration 0 has stages 0, 3, 7.
        spec.push_iteration(vec![
            NodeSpec::wait(0, 1),
            NodeSpec::cont(3, 1),
            NodeSpec::cont(7, 1),
        ]);
        // Iteration 1 has stages 0, 5, 7.
        spec.push_iteration(vec![
            NodeSpec::wait(0, 1),
            NodeSpec::wait(5, 1),
            NodeSpec::wait(7, 1),
        ]);
        // Cross edge into (1, 5): iteration 0 has no stage 5, so the edge
        // collapses onto the last real node before it, stage 3 (index 1).
        assert_eq!(spec.cross_edge_source(1, 5), Some(1));
        // Cross edge into (1, 7): stage 7 exists in iteration 0 (index 2).
        assert_eq!(spec.cross_edge_source(1, 7), Some(2));
        // Cross edge into (1, 0): exact match at index 0.
        assert_eq!(spec.cross_edge_source(1, 0), Some(0));
        // Iteration 0 has no cross edges at all.
        assert_eq!(spec.cross_edge_source(0, 7), None);
    }

    #[test]
    fn last_real_node_before_handles_boundaries() {
        let mut spec = PipelineSpec::new();
        spec.push_iteration(vec![NodeSpec::wait(2, 1), NodeSpec::cont(4, 1)]);
        assert_eq!(spec.last_real_node_before(0, 2), None);
        assert_eq!(spec.last_real_node_before(0, 3), Some(0));
        assert_eq!(spec.last_real_node_before(0, 100), Some(1));
    }
}
