//! Structural validation of pipeline dags.
//!
//! Section 2 of the paper constrains the pipelines Cilk-P accepts: stage
//! numbers strictly increase within an iteration, Stage 0 is always serial
//! (every iteration starts there and the loop test is part of it), and cross
//! edges only go between adjacent iterations. [`PipelineSpec::push_iteration`]
//! enforces the strictly-increasing rule eagerly; this module provides a
//! whole-dag check that recorded or hand-built specs obey the remaining
//! rules, plus a classification of stages into serial / parallel / hybrid
//! (the paper's Section 1 taxonomy) that the evaluation harness prints.

use crate::spec::PipelineSpec;
use std::collections::BTreeMap;

/// A violation of the Cilk-P pipeline structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An iteration contains no nodes.
    EmptyIteration {
        /// Offending iteration index.
        iteration: usize,
    },
    /// Stage numbers do not strictly increase within the iteration.
    NonIncreasingStages {
        /// Offending iteration index.
        iteration: usize,
        /// Position within the iteration where the violation occurs.
        position: usize,
    },
    /// An iteration does not begin at stage 0.
    MissingStageZero {
        /// Offending iteration index.
        iteration: usize,
        /// The stage the iteration actually starts at.
        first_stage: u64,
    },
    /// A node has zero work, which the analysis treats as a real node; zero
    /// weights usually indicate a recording bug (null nodes should simply be
    /// absent from the spec).
    ZeroWorkNode {
        /// Offending iteration index.
        iteration: usize,
        /// Stage of the zero-work node.
        stage: u64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::EmptyIteration { iteration } => {
                write!(f, "iteration {iteration} has no nodes")
            }
            Violation::NonIncreasingStages {
                iteration,
                position,
            } => write!(
                f,
                "iteration {iteration}: stage numbers do not strictly increase at position {position}"
            ),
            Violation::MissingStageZero {
                iteration,
                first_stage,
            } => write!(
                f,
                "iteration {iteration} starts at stage {first_stage}, not stage 0"
            ),
            Violation::ZeroWorkNode { iteration, stage } => {
                write!(f, "node ({iteration}, {stage}) has zero work")
            }
        }
    }
}

/// How the nodes of one stage relate across iterations (Section 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageClass {
    /// Every node of the stage (beyond iteration 0) has an incoming cross
    /// edge.
    Serial,
    /// No node of the stage has an incoming cross edge.
    Parallel,
    /// Some do, some do not (the x264 rows, for example).
    Hybrid,
}

impl StageClass {
    /// One-letter code used by the paper's "SPS" / "SSPS" notation.
    pub fn code(self) -> char {
        match self {
            StageClass::Serial => 'S',
            StageClass::Parallel => 'P',
            StageClass::Hybrid => 'H',
        }
    }
}

/// Validates `spec` against the Cilk-P structural rules. Returns all
/// violations found (empty means the spec is well formed).
pub fn validate(spec: &PipelineSpec) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (i, nodes) in spec.iterations.iter().enumerate() {
        if nodes.is_empty() {
            violations.push(Violation::EmptyIteration { iteration: i });
            continue;
        }
        if nodes[0].stage != 0 {
            violations.push(Violation::MissingStageZero {
                iteration: i,
                first_stage: nodes[0].stage,
            });
        }
        for (pos, pair) in nodes.windows(2).enumerate() {
            if pair[0].stage >= pair[1].stage {
                violations.push(Violation::NonIncreasingStages {
                    iteration: i,
                    position: pos + 1,
                });
            }
        }
        for node in nodes {
            if node.work == 0 {
                violations.push(Violation::ZeroWorkNode {
                    iteration: i,
                    stage: node.stage,
                });
            }
        }
    }
    violations
}

/// Classifies every stage that appears in the dag as serial, parallel or
/// hybrid, returning them in increasing stage order. Stage 0 is serial by
/// construction (the control chain) and is reported as such regardless of
/// the recorded `wait` flags.
pub fn classify_stages(spec: &PipelineSpec) -> Vec<(u64, StageClass)> {
    // For each stage: (nodes seen beyond iteration 0, nodes with a cross edge).
    let mut counts: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
    for (i, nodes) in spec.iterations.iter().enumerate() {
        for node in nodes {
            let entry = counts.entry(node.stage).or_insert((0, 0));
            if i > 0 {
                entry.0 += 1;
                if node.wait {
                    entry.1 += 1;
                }
            } else {
                // Make sure stages that only appear in iteration 0 are still
                // reported.
                counts.entry(node.stage).or_insert((0, 0));
            }
        }
    }
    counts
        .into_iter()
        .map(|(stage, (total, waits))| {
            let class = if stage == 0 {
                StageClass::Serial
            } else if total == 0 {
                // Only iteration 0 reached this stage; with a single column
                // there are no cross edges either way — call it parallel.
                StageClass::Parallel
            } else if waits == total {
                StageClass::Serial
            } else if waits == 0 {
                StageClass::Parallel
            } else {
                StageClass::Hybrid
            };
            (stage, class)
        })
        .collect()
}

/// The "SPS"-style signature string of a dag (one letter per stage in stage
/// order), e.g. `"SPS"` for ferret and `"SSPS"` for dedup.
pub fn signature(spec: &PipelineSpec) -> String {
    classify_stages(spec)
        .into_iter()
        .map(|(_, class)| class.code())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::spec::NodeSpec;

    #[test]
    fn generated_dags_are_well_formed() {
        for spec in [
            generators::sps(10, 1, 5, 1),
            generators::ssps(10, 1, 2, 9, 1),
            generators::uniform(8, 3, 2),
            generators::pipe_fib(30, 1, 1),
            generators::pathological(100_000),
            generators::x264_dag(6, 4, 2, 1, 3, 2, 3, 1),
            generators::random(25, 6, 20, 11),
        ] {
            assert!(
                validate(&spec).is_empty(),
                "violations: {:?}",
                validate(&spec)
            );
        }
    }

    #[test]
    fn ferret_and_dedup_signatures_match_the_paper() {
        assert_eq!(signature(&generators::sps(10, 1, 5, 1)), "SPS");
        assert_eq!(signature(&generators::ssps(10, 1, 2, 9, 1)), "SSPS");
    }

    #[test]
    fn x264_rows_are_hybrid_stages() {
        // With an I-frame every 3 iterations and P-frames otherwise, row
        // stages have cross edges for some iterations only.
        let spec = generators::x264_dag(9, 3, 2, 0, 3, 2, 3, 1);
        let classes = classify_stages(&spec);
        assert!(
            classes
                .iter()
                .any(|&(stage, class)| stage > 0 && class == StageClass::Hybrid),
            "expected at least one hybrid row stage, got {classes:?}"
        );
    }

    #[test]
    fn missing_stage_zero_detected() {
        let mut spec = PipelineSpec::new();
        spec.push_iteration(vec![NodeSpec::wait(2, 1), NodeSpec::cont(3, 1)]);
        let violations = validate(&spec);
        assert!(violations.iter().any(|v| matches!(
            v,
            Violation::MissingStageZero {
                iteration: 0,
                first_stage: 2
            }
        )));
    }

    #[test]
    fn zero_work_nodes_detected() {
        let mut spec = PipelineSpec::new();
        spec.push_iteration(vec![NodeSpec::wait(0, 1), NodeSpec::cont(1, 0)]);
        let violations = validate(&spec);
        assert_eq!(
            violations,
            vec![Violation::ZeroWorkNode {
                iteration: 0,
                stage: 1
            }]
        );
        assert!(violations[0].to_string().contains("zero work"));
    }

    #[test]
    fn empty_iterations_detected_without_panicking() {
        // push_iteration panics on empty input, so build the struct directly
        // the way a buggy recorder might.
        let spec = PipelineSpec {
            iterations: vec![vec![NodeSpec::wait(0, 1)], vec![]],
        };
        let violations = validate(&spec);
        assert_eq!(violations, vec![Violation::EmptyIteration { iteration: 1 }]);
    }

    #[test]
    fn stage_zero_always_reported_serial() {
        // Even if a recorder produced wait=false on stage 0, the control
        // chain is serial by construction.
        let mut spec = PipelineSpec::new();
        spec.push_iteration(vec![NodeSpec::cont(0, 1), NodeSpec::cont(1, 1)]);
        spec.push_iteration(vec![NodeSpec::cont(0, 1), NodeSpec::cont(1, 1)]);
        let classes = classify_stages(&spec);
        assert_eq!(classes[0], (0, StageClass::Serial));
        assert_eq!(classes[1], (1, StageClass::Parallel));
    }
}
