//! Burdened-dag analysis (the Cilkview model) for pipeline dags.
//!
//! Section 10 of the paper measures the parallelism of its dedup port with a
//! modified **Cilkview** scalability analyzer. Cilkview does not report the
//! raw `T_1/T_∞` ratio alone: it analyses the *burdened* dag, in which every
//! edge that could involve a steal (a spawned continuation — for a pipeline,
//! a cross edge or the control-chain edge that launches the next iteration)
//! is charged a constant scheduling *burden*, modelling the migration cost
//! (deque operations, cache reload) a work-stealing scheduler pays when the
//! two endpoints run on different workers.
//!
//! This module reproduces that analysis for a [`PipelineSpec`]:
//!
//! * [`analyze_burdened`] computes the burdened span `T_∞^b` and burdened
//!   parallelism `T_1 / T_∞^b`;
//! * [`SpeedupEstimate`] gives Cilkview-style lower/upper speedup bounds for
//!   a range of worker counts, which the evaluation harness can print next
//!   to measured or simulated speedups.

use crate::analysis::{analyze, DagAnalysis};
use crate::spec::PipelineSpec;

/// Parameters of the burdened analysis.
#[derive(Debug, Clone, Copy)]
pub struct BurdenModel {
    /// Cost charged to every cross edge and control-chain edge, in the same
    /// unit as node work. Cilkview charges 15,000 cycles per potential
    /// steal; recorded specs in this repository use nanoseconds, for which
    /// [`BurdenModel::default`] charges 2,000 (≈ a few microseconds of deque
    /// and cache traffic on the paper's 2 GHz Opterons).
    pub burden_per_edge: u64,
    /// Include throttling edges for this window (they are charged no burden
    /// — throttling never migrates work by itself — but they lengthen paths).
    pub throttle: Option<usize>,
}

impl Default for BurdenModel {
    fn default() -> Self {
        BurdenModel {
            burden_per_edge: 2_000,
            throttle: None,
        }
    }
}

/// Result of the burdened analysis.
#[derive(Debug, Clone, Copy)]
pub struct BurdenedAnalysis {
    /// The unburdened work/span analysis of the same dag.
    pub plain: DagAnalysis,
    /// Burdened span `T_∞^b ≥ T_∞`.
    pub burdened_span: u64,
    /// Number of edges that were charged a burden.
    pub burdened_edges: usize,
}

impl BurdenedAnalysis {
    /// Burdened parallelism `T_1 / T_∞^b` — Cilkview's headline number and
    /// the value the paper quotes (7.4 for dedup).
    pub fn burdened_parallelism(&self) -> f64 {
        if self.burdened_span == 0 {
            0.0
        } else {
            self.plain.work as f64 / self.burdened_span as f64
        }
    }

    /// Cilkview-style speedup estimate on `workers` processors.
    pub fn estimate(&self, workers: usize) -> SpeedupEstimate {
        let p = workers.max(1) as f64;
        let work = self.plain.work as f64;
        let span = self.plain.span.max(1) as f64;
        let bspan = self.burdened_span.max(1) as f64;
        // Upper bound: perfect linear speedup capped by the unburdened
        // parallelism (no scheduler can beat the greedy bound).
        let upper = p.min(work / span);
        // Lower bound: the burdened greedy bound T_P ≤ T_1/P + T_∞^b, i.e.
        // speedup ≥ T_1 / (T_1/P + T_∞^b) = P / (1 + P·T_∞^b/T_1).
        let lower = work / (work / p + bspan);
        SpeedupEstimate {
            workers,
            lower,
            upper,
        }
    }
}

/// Cilkview's estimated speedup range on a given number of workers.
#[derive(Debug, Clone, Copy)]
pub struct SpeedupEstimate {
    /// Number of workers the estimate is for.
    pub workers: usize,
    /// Lower bound on expected speedup (burdened greedy bound).
    pub lower: f64,
    /// Upper bound on achievable speedup (min of `P` and the parallelism).
    pub upper: f64,
}

/// Analyses the burdened dag: every cross edge and every control-chain edge
/// (iteration `i-1` Stage 0 → iteration `i` Stage 0) is lengthened by
/// `model.burden_per_edge`.
///
/// The implementation reuses the plain longest-path dynamic program but adds
/// the burden to the completion time propagated along burdened edges, which
/// is equivalent to subdividing each burdened edge with a burden-weight
/// vertex.
pub fn analyze_burdened(spec: &PipelineSpec, model: &BurdenModel) -> BurdenedAnalysis {
    let plain = analyze(spec, model.throttle);
    let n = spec.num_iterations();
    let burden = model.burden_per_edge;
    let mut burdened_edges = 0usize;

    let mut completion: Vec<Vec<u64>> = Vec::with_capacity(n);
    let mut span = 0u64;
    for i in 0..n {
        let nodes = &spec.iterations[i];
        let mut row = Vec::with_capacity(nodes.len());
        for (idx, node) in nodes.iter().enumerate() {
            let mut start = 0u64;
            if idx > 0 {
                // Stage edges within an iteration are executed by the same
                // worker in stage order; they carry no burden.
                start = start.max(row[idx - 1]);
            }
            if idx == 0 && i > 0 {
                // Control-chain edge: the next iteration's Stage 0 is the
                // continuation the producer pushes — a potential steal.
                start = start.max(completion[i - 1][0] + burden);
                burdened_edges += 1;
            }
            if node.wait && i > 0 {
                if let Some(src) = spec.cross_edge_source(i, node.stage) {
                    // Cross edge: resuming a suspended right neighbour is a
                    // potential migration.
                    start = start.max(completion[i - 1][src] + burden);
                    burdened_edges += 1;
                }
            }
            if idx == 0 {
                if let Some(k) = model.throttle {
                    if k > 0 && i >= k {
                        if let Some(&last) = completion[i - k].last() {
                            start = start.max(last);
                        }
                    }
                }
            }
            let finish = start + node.work;
            span = span.max(finish);
            row.push(finish);
        }
        completion.push(row);
    }

    BurdenedAnalysis {
        plain,
        burdened_span: span,
        burdened_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_unthrottled;
    use crate::generators;

    #[test]
    fn zero_burden_reduces_to_plain_analysis() {
        let spec = generators::ssps(40, 1, 2, 9, 1);
        let b = analyze_burdened(
            &spec,
            &BurdenModel {
                burden_per_edge: 0,
                throttle: None,
            },
        );
        let plain = analyze_unthrottled(&spec);
        assert_eq!(b.burdened_span, plain.span);
        assert!((b.burdened_parallelism() - plain.parallelism()).abs() < 1e-9);
    }

    #[test]
    fn burden_never_decreases_span_and_never_increases_parallelism() {
        for spec in [
            generators::sps(30, 1, 20, 1),
            generators::pipe_fib(40, 1, 3),
            generators::random(25, 5, 15, 3),
        ] {
            let plain = analyze_unthrottled(&spec);
            for burden in [1u64, 10, 100, 10_000] {
                let b = analyze_burdened(
                    &spec,
                    &BurdenModel {
                        burden_per_edge: burden,
                        throttle: None,
                    },
                );
                assert!(b.burdened_span >= plain.span, "burden {burden}");
                assert!(
                    b.burdened_parallelism() <= plain.parallelism() + 1e-9,
                    "burden {burden}"
                );
            }
        }
    }

    #[test]
    fn fine_grained_pipelines_lose_more_burdened_parallelism() {
        // pipe-fib vs pipe-fib-256 (Figure 9): the burden hits fine-grained
        // stages much harder — exactly why the paper's uncoarsened pipe-fib
        // fails to scale without dependency folding.
        let fine = generators::pipe_fib(200, 1, 5);
        let coarse = generators::pipe_fib(200, 256, 5 * 256);
        let model = BurdenModel {
            burden_per_edge: 50,
            throttle: None,
        };
        let fine_b = analyze_burdened(&fine, &model);
        let coarse_b = analyze_burdened(&coarse, &model);
        let fine_loss = fine_b.plain.parallelism() / fine_b.burdened_parallelism();
        let coarse_loss = coarse_b.plain.parallelism() / coarse_b.burdened_parallelism();
        assert!(
            fine_loss > coarse_loss,
            "fine loss {fine_loss:.2} should exceed coarse loss {coarse_loss:.2}"
        );
    }

    #[test]
    fn speedup_estimates_bracket_the_greedy_bound() {
        let spec = generators::sps(100, 1, 50, 1);
        let b = analyze_burdened(&spec, &BurdenModel::default());
        for p in [1usize, 2, 4, 8, 16] {
            let est = b.estimate(p);
            assert!(est.lower <= est.upper + 1e-9, "P={p}");
            assert!(est.upper <= p as f64 + 1e-9, "upper bound cannot exceed P");
            assert!(est.lower > 0.0);
        }
        // On one worker both bounds are essentially 1.
        let est1 = b.estimate(1);
        assert!(est1.upper <= 1.0 + 1e-9);
    }

    #[test]
    fn burdened_edge_count_matches_dag_structure() {
        // An SPS pipeline with n iterations has (n-1) control edges and
        // 2(n-1) cross edges (stages 0 and 2 are serial).
        let n = 25;
        let spec = generators::sps(n, 1, 5, 1);
        let b = analyze_burdened(&spec, &BurdenModel::default());
        assert_eq!(b.burdened_edges, 3 * (n - 1));
    }
}
