//! Discrete-event simulation of pipeline schedules on `P` virtual workers.
//!
//! The evaluation tables of the paper (Figures 6–8) compare three execution
//! strategies on 1–16 cores. This module reproduces the *shape* of those
//! comparisons on any host by simulating the schedules over a weighted
//! [`PipelineSpec`] (either synthetic or recorded from a real run of the
//! workloads):
//!
//! * [`simulate_piper`] — bind-to-element greedy scheduling with PIPER's
//!   throttling window `K`: the model of Cilk-P (and, with a token limit,
//!   of TBB's construct-and-run pipelines — [`simulate_construct_and_run`]).
//! * [`simulate_bind_to_stage`] — the Pthreads model: one thread per serial
//!   stage, `Q` threads per parallel stage, bounded queues between stages,
//!   and at most `P` threads executing simultaneously.
//!
//! Greedy list scheduling obeys the same bound PIPER's analysis gives
//! (`T_P ≤ T_1/P + T_∞` by Brent's theorem), so simulated speedups are a
//! faithful stand-in for the asymptotic behaviour the paper measures, while
//! obviously abstracting away constant-factor effects (cache locality,
//! memory bandwidth, I/O overlap).

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

use crate::spec::PipelineSpec;

/// The outcome of one simulated execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimResult {
    /// Simulated completion time `T_P`.
    pub makespan: u64,
    /// Total work executed (equals the spec's work; a sanity check).
    pub work_executed: u64,
    /// Maximum number of simultaneously live (started but unfinished)
    /// iterations — the quantity PIPER's throttling bounds.
    pub peak_live_iterations: usize,
    /// Number of processors simulated.
    pub workers: usize,
}

impl SimResult {
    /// Speedup with respect to a serial time (usually the spec's work).
    pub fn speedup_vs(&self, serial_time: u64) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            serial_time as f64 / self.makespan as f64
        }
    }

    /// Fraction of processor-time spent executing work.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 || self.workers == 0 {
            0.0
        } else {
            self.work_executed as f64 / (self.makespan as f64 * self.workers as f64)
        }
    }
}

/// Internal node identifier: (iteration, index within the iteration).
type NodeId = (usize, usize);

/// Builds predecessor counts and successor lists for the dag (same edge set
/// as [`crate::analysis::analyze`]).
fn build_edges(
    spec: &PipelineSpec,
    throttle: Option<usize>,
) -> (Vec<Vec<usize>>, Vec<Vec<Vec<NodeId>>>) {
    let n = spec.num_iterations();
    let mut indegree: Vec<Vec<usize>> = (0..n).map(|i| vec![0; spec.iterations[i].len()]).collect();
    let mut successors: Vec<Vec<Vec<NodeId>>> = (0..n)
        .map(|i| vec![Vec::new(); spec.iterations[i].len()])
        .collect();

    let add_edge = |from: NodeId,
                    to: NodeId,
                    indeg: &mut Vec<Vec<usize>>,
                    succ: &mut Vec<Vec<Vec<NodeId>>>| {
        indeg[to.0][to.1] += 1;
        succ[from.0][from.1].push(to);
    };

    for i in 0..n {
        for (idx, node) in spec.iterations[i].iter().enumerate() {
            let me = (i, idx);
            if idx > 0 {
                add_edge((i, idx - 1), me, &mut indegree, &mut successors);
            }
            if idx == 0 && i > 0 {
                // Serial control chain (Stage 0 / loop test).
                add_edge((i - 1, 0), me, &mut indegree, &mut successors);
            }
            if node.wait && i > 0 {
                if let Some(src) = spec.cross_edge_source(i, node.stage) {
                    add_edge((i - 1, src), me, &mut indegree, &mut successors);
                }
            }
            if idx == 0 {
                if let Some(k) = throttle {
                    if k > 0 && i >= k {
                        let last = spec.iterations[i - k].len() - 1;
                        add_edge((i - k, last), me, &mut indegree, &mut successors);
                    }
                }
            }
        }
    }
    (indegree, successors)
}

/// Simulates PIPER-style execution: greedy bind-to-element list scheduling
/// on `P` workers over the dag including throttling edges for window `K`
/// (`None` simulates the unthrottled dag).
pub fn simulate_piper(spec: &PipelineSpec, workers: usize, throttle: Option<usize>) -> SimResult {
    assert!(workers >= 1);
    let n = spec.num_iterations();
    let total_nodes = spec.num_nodes();
    if total_nodes == 0 {
        return SimResult {
            makespan: 0,
            work_executed: 0,
            peak_live_iterations: 0,
            workers,
        };
    }
    let (mut indegree, successors) = build_edges(spec, throttle);

    // Ready nodes, ordered by (iteration, index): the greedy scheduler
    // prefers the oldest iteration, mimicking PIPER's bind-to-element
    // tendency to finish old iterations before starting new ones.
    let mut ready: BTreeSet<NodeId> = BTreeSet::new();
    for (i, row) in indegree.iter().enumerate().take(n) {
        for (idx, &deg) in row.iter().enumerate() {
            if deg == 0 {
                ready.insert((i, idx));
            }
        }
    }

    let mut events: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
    let mut idle = workers;
    let mut now = 0u64;
    let mut done = 0usize;
    let mut work_executed = 0u64;

    // Live-iteration tracking.
    let mut remaining_per_iter: Vec<usize> = spec.iterations.iter().map(|it| it.len()).collect();
    let mut started: Vec<bool> = vec![false; n];
    let mut live = 0usize;
    let mut peak_live = 0usize;

    while done < total_nodes {
        // Assign ready nodes to idle workers.
        while idle > 0 {
            let Some(&node) = ready.iter().next() else {
                break;
            };
            ready.remove(&node);
            idle -= 1;
            if !started[node.0] {
                started[node.0] = true;
                live += 1;
                peak_live = peak_live.max(live);
            }
            let work = spec.iterations[node.0][node.1].work;
            events.push(Reverse((now + work, node.0, node.1)));
        }

        // Advance to the next completion.
        let Some(Reverse((t, i, idx))) = events.pop() else {
            panic!("simulation deadlock: no running nodes but work remains");
        };
        now = t;
        let mut finished = vec![(i, idx)];
        // Batch all completions at the same timestamp.
        while let Some(&Reverse((t2, i2, idx2))) = events.peek() {
            if t2 == now {
                events.pop();
                finished.push((i2, idx2));
            } else {
                break;
            }
        }
        for (fi, fidx) in finished {
            done += 1;
            idle += 1;
            work_executed += spec.iterations[fi][fidx].work;
            remaining_per_iter[fi] -= 1;
            if remaining_per_iter[fi] == 0 {
                live -= 1;
            }
            for &(si, sidx) in &successors[fi][fidx] {
                indegree[si][sidx] -= 1;
                if indegree[si][sidx] == 0 {
                    ready.insert((si, sidx));
                }
            }
        }
    }

    SimResult {
        makespan: now,
        work_executed,
        peak_live_iterations: peak_live,
        workers,
    }
}

/// Simulates a TBB-style construct-and-run pipeline: bind-to-element
/// scheduling with a limit on the number of in-flight iterations (TBB's
/// `max_number_of_live_tokens`), which plays the same role as PIPER's
/// throttling limit.
pub fn simulate_construct_and_run(spec: &PipelineSpec, workers: usize, tokens: usize) -> SimResult {
    simulate_piper(spec, workers, Some(tokens.max(1)))
}

/// Configuration for the bind-to-stage (Pthreads-style) simulation.
#[derive(Debug, Clone, Copy)]
pub struct BindToStageConfig {
    /// Number of threads dedicated to each parallel stage (the PARSEC
    /// Pthreads implementations' `Q`); serial stages always get one thread.
    pub threads_per_parallel_stage: usize,
    /// Capacity of the queue in front of each stage (the Pthreads
    /// throttling mechanism).
    pub queue_capacity: usize,
}

impl Default for BindToStageConfig {
    fn default() -> Self {
        BindToStageConfig {
            threads_per_parallel_stage: 4,
            queue_capacity: 64,
        }
    }
}

/// Simulates a Pthreads-style bind-to-stage pipeline execution.
///
/// Every distinct stage of the spec gets a dedicated set of threads (one for
/// serial/hybrid stages, `Q` for parallel stages). Items (iterations) flow
/// through every stage in order through bounded FIFO queues; at most
/// `workers` threads execute at any instant (extra threads model
/// oversubscription and simply wait for a processor slot).
pub fn simulate_bind_to_stage(
    spec: &PipelineSpec,
    workers: usize,
    config: BindToStageConfig,
) -> SimResult {
    assert!(workers >= 1);
    let n = spec.num_iterations();
    if n == 0 || spec.num_nodes() == 0 {
        return SimResult {
            makespan: 0,
            work_executed: 0,
            peak_live_iterations: 0,
            workers,
        };
    }

    // Distinct stages in increasing order.
    let mut stages: Vec<u64> = spec
        .iterations
        .iter()
        .flat_map(|it| it.iter().map(|nd| nd.stage))
        .collect();
    stages.sort_unstable();
    stages.dedup();
    let num_stages = stages.len();

    // A stage is parallel if no node of that stage (beyond iteration 0) has
    // a cross edge; hybrid and serial stages are handled by a single thread
    // to preserve ordering.
    let is_parallel: Vec<bool> = stages
        .iter()
        .map(|&s| {
            spec.iterations
                .iter()
                .enumerate()
                .filter(|(i, _)| *i > 0)
                .flat_map(|(_, it)| it.iter())
                .filter(|nd| nd.stage == s)
                .all(|nd| !nd.wait)
        })
        .collect();

    // Work of iteration `i` at stage position `sp` (0 if the iteration has
    // no node at that stage: a null pass-through).
    let work_at = |i: usize, sp: usize| -> u64 {
        spec.iterations[i]
            .iter()
            .find(|nd| nd.stage == stages[sp])
            .map(|nd| nd.work)
            .unwrap_or(0)
    };

    // Threads: (stage position, id). Serial stages get 1, parallel get Q.
    #[derive(Debug, Clone, Copy, PartialEq)]
    enum ThreadState {
        /// Waiting for an input item.
        Idle,
        /// Holding an item, waiting for a processor slot.
        Ready { item: usize },
        /// Executing an item until the given time.
        Running { item: usize, until: u64 },
        /// Finished executing an item but the downstream queue is full.
        Blocked { item: usize },
    }
    struct StageThread {
        stage_pos: usize,
        state: ThreadState,
    }

    let mut threads: Vec<StageThread> = Vec::new();
    for (sp, &parallel) in is_parallel.iter().enumerate() {
        let count = if parallel {
            config.threads_per_parallel_stage.max(1)
        } else {
            1
        };
        for _ in 0..count {
            threads.push(StageThread {
                stage_pos: sp,
                state: ThreadState::Idle,
            });
        }
    }

    // Input queues per stage. Stage 0's queue is fed by the source, which
    // respects the queue capacity as well (this is the Pthreads throttling).
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); num_stages];
    let mut next_to_produce = 0usize;

    let mut now = 0u64;
    let mut completed_items = 0usize;
    let mut work_executed = 0u64;
    let mut live = 0usize;
    let mut peak_live = 0usize;
    let mut item_started = vec![false; n];

    loop {
        // Source: feed stage 0's queue while there is room.
        while next_to_produce < n && queues[0].len() < config.queue_capacity {
            queues[0].push_back(next_to_produce);
            next_to_produce += 1;
        }

        // Idle threads fetch items from their stage's queue (serial stages
        // have one thread, so order is preserved automatically).
        for t in threads.iter_mut() {
            if t.state == ThreadState::Idle {
                if let Some(item) = queues[t.stage_pos].pop_front() {
                    t.state = ThreadState::Ready { item };
                }
            }
        }

        // Allocate processor slots: running threads keep theirs; remaining
        // slots go to Ready threads in thread order (FIFO-ish).
        let running = threads
            .iter()
            .filter(|t| matches!(t.state, ThreadState::Running { .. }))
            .count();
        let mut free_slots = workers.saturating_sub(running);
        for t in threads.iter_mut() {
            if free_slots == 0 {
                break;
            }
            if let ThreadState::Ready { item } = t.state {
                let w = work_at(item, t.stage_pos);
                if !item_started[item] {
                    item_started[item] = true;
                    live += 1;
                    peak_live = peak_live.max(live);
                }
                t.state = ThreadState::Running {
                    item,
                    until: now + w,
                };
                free_slots -= 1;
            }
        }

        // Termination check.
        if completed_items == n {
            break;
        }

        // Advance time to the earliest running completion.
        let next_time = threads
            .iter()
            .filter_map(|t| match t.state {
                ThreadState::Running { until, .. } => Some(until),
                _ => None,
            })
            .min();
        let Some(next_time) = next_time else {
            // Nothing is running. If items remain, we must be able to make
            // progress by unblocking below; if not, the configuration
            // deadlocks (queue capacity 0), which we guard against.
            if completed_items == n {
                break;
            }
            // Try unblocking blocked threads (space may have appeared).
            let mut progressed = false;
            for thread in threads.iter_mut() {
                if let ThreadState::Blocked { item } = thread.state {
                    let sp = thread.stage_pos;
                    if sp + 1 == num_stages {
                        unreachable!("final stage never blocks");
                    } else if queues[sp + 1].len() < config.queue_capacity {
                        queues[sp + 1].push_back(item);
                        thread.state = ThreadState::Idle;
                        progressed = true;
                    }
                }
            }
            if !progressed {
                panic!("bind-to-stage simulation deadlock (queue capacity too small?)");
            }
            continue;
        };
        now = next_time;

        // Complete every thread finishing at `now`.
        for thread in threads.iter_mut() {
            let (item, until) = match thread.state {
                ThreadState::Running { item, until } => (item, until),
                _ => continue,
            };
            if until != now {
                continue;
            }
            work_executed += work_at(item, thread.stage_pos);
            let sp = thread.stage_pos;
            if sp + 1 == num_stages {
                completed_items += 1;
                live -= 1;
                thread.state = ThreadState::Idle;
            } else if queues[sp + 1].len() < config.queue_capacity {
                queues[sp + 1].push_back(item);
                thread.state = ThreadState::Idle;
            } else {
                thread.state = ThreadState::Blocked { item };
            }
        }

        // Unblock threads whose downstream queue has space now.
        for thread in threads.iter_mut() {
            if let ThreadState::Blocked { item } = thread.state {
                let sp = thread.stage_pos;
                if queues[sp + 1].len() < config.queue_capacity {
                    queues[sp + 1].push_back(item);
                    thread.state = ThreadState::Idle;
                }
            }
        }
    }

    SimResult {
        makespan: now,
        work_executed,
        peak_live_iterations: peak_live,
        workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, analyze_unthrottled};
    use crate::generators;

    #[test]
    fn single_worker_makespan_equals_work() {
        let spec = generators::sps(20, 1, 10, 1);
        let r = simulate_piper(&spec, 1, Some(8));
        assert_eq!(r.makespan, spec.work());
        assert_eq!(r.work_executed, spec.work());
    }

    #[test]
    fn makespan_never_below_span_or_work_over_p() {
        let spec = generators::sps(64, 1, 40, 1);
        for p in [1usize, 2, 4, 8, 16] {
            let r = simulate_piper(&spec, p, Some(4 * p));
            let a = analyze(&spec, Some(4 * p));
            assert!(r.makespan >= a.span, "P={p}");
            assert!(r.makespan >= spec.work() / p as u64, "P={p}");
            // Greedy (Brent) bound: T_P <= T_1/P + T_inf.
            assert!(
                r.makespan <= spec.work() / p as u64 + a.span,
                "P={p}: {} > {} + {}",
                r.makespan,
                spec.work() / p as u64,
                a.span
            );
        }
    }

    #[test]
    fn speedup_scales_with_processors_when_parallelism_allows() {
        let spec = generators::sps(256, 1, 100, 1);
        let serial = spec.work();
        let s4 = simulate_piper(&spec, 4, Some(16)).speedup_vs(serial);
        let s16 = simulate_piper(&spec, 16, Some(64)).speedup_vs(serial);
        assert!(s4 > 3.0, "speedup on 4 workers was {s4}");
        assert!(s16 > 10.0, "speedup on 16 workers was {s16}");
    }

    #[test]
    fn speedup_capped_by_parallelism() {
        // A pipeline with almost no parallelism (all serial stages).
        let spec = generators::uniform(50, 3, 5);
        let a = analyze_unthrottled(&spec);
        let r = simulate_piper(&spec, 16, Some(64));
        let speedup = r.speedup_vs(spec.work());
        assert!(
            speedup <= a.parallelism() + 1e-9,
            "speedup {speedup} exceeds parallelism {}",
            a.parallelism()
        );
    }

    #[test]
    fn throttling_limits_live_iterations_in_simulation() {
        let spec = generators::sps(200, 1, 50, 1);
        for k in [2usize, 4, 8, 16] {
            let r = simulate_piper(&spec, 8, Some(k));
            assert!(
                r.peak_live_iterations <= k,
                "K={k} but {} live",
                r.peak_live_iterations
            );
        }
    }

    #[test]
    fn unthrottled_runaway_pipeline_uses_unbounded_space() {
        // Without throttling, a greedy scheduler on a pipeline whose first
        // stage is much cheaper than the rest starts many iterations: the
        // peak number of live iterations grows with n (the "runaway
        // pipeline" the paper warns about), unlike the throttled run.
        let spec = generators::sps(400, 1, 200, 200);
        let unthrottled = simulate_piper(&spec, 4, None);
        let throttled = simulate_piper(&spec, 4, Some(16));
        assert!(unthrottled.peak_live_iterations > 100);
        assert!(throttled.peak_live_iterations <= 16);
    }

    #[test]
    fn construct_and_run_equals_piper_with_token_limit() {
        let spec = generators::ssps(100, 1, 3, 30, 2);
        let a = simulate_construct_and_run(&spec, 8, 32);
        let b = simulate_piper(&spec, 8, Some(32));
        assert_eq!(a, b);
    }

    #[test]
    fn k_equal_one_serializes_iterations() {
        let spec = generators::sps(30, 1, 10, 1);
        let r = simulate_piper(&spec, 8, Some(1));
        // With K=1 every iteration must finish before the next starts, and
        // within an iteration the three stages are a chain, so the makespan
        // equals the total work.
        assert_eq!(r.makespan, spec.work());
    }

    #[test]
    fn bind_to_stage_executes_all_work() {
        let spec = generators::ssps(60, 1, 2, 20, 1);
        let r = simulate_bind_to_stage(&spec, 8, BindToStageConfig::default());
        assert_eq!(r.work_executed, spec.work());
        assert!(r.makespan >= spec.work() / 8);
    }

    #[test]
    fn bind_to_stage_serial_bottleneck_limits_speedup() {
        // If a serial stage dominates, bind-to-stage cannot beat 1/serial
        // fraction (and neither can anything else).
        let spec = generators::ssps(60, 1, 50, 5, 1);
        let r = simulate_bind_to_stage(&spec, 8, BindToStageConfig::default());
        let speedup = r.speedup_vs(spec.work());
        assert!(
            speedup < 1.4,
            "speedup {speedup} is impossible for this dag"
        );
    }

    #[test]
    fn bind_to_stage_pipeline_overlaps_stages() {
        // With a balanced SPS pipeline and enough queue room, bind-to-stage
        // overlaps the serial stages with the parallel stage and beats
        // serial execution.
        let spec = generators::sps(200, 1, 20, 1);
        let r = simulate_bind_to_stage(
            &spec,
            8,
            BindToStageConfig {
                threads_per_parallel_stage: 6,
                queue_capacity: 32,
            },
        );
        assert!(r.speedup_vs(spec.work()) > 3.0);
    }

    #[test]
    fn bind_to_stage_queue_capacity_bounds_live_items() {
        let spec = generators::sps(300, 1, 30, 1);
        let r = simulate_bind_to_stage(
            &spec,
            8,
            BindToStageConfig {
                threads_per_parallel_stage: 4,
                queue_capacity: 8,
            },
        );
        // Live items are bounded by total queue space plus one per thread.
        let stages = 3;
        let threads = 1 + 4 + 1;
        assert!(r.peak_live_iterations <= stages * 8 + threads);
    }

    #[test]
    fn empty_spec_simulates_to_zero() {
        let spec = PipelineSpec::new();
        let r = simulate_piper(&spec, 4, Some(4));
        assert_eq!(r.makespan, 0);
        let r = simulate_bind_to_stage(&spec, 4, BindToStageConfig::default());
        assert_eq!(r.makespan, 0);
    }

    #[test]
    fn pathological_dag_throttled_speedup_is_poor_unthrottled_good() {
        // Theorem 13 / Figure 10: any scheduler with a small throttling
        // window cannot achieve good speedup on the pathological pipeline,
        // whereas the unthrottled dag has plenty of parallelism.
        let spec = generators::pathological(1_000_000);
        let work = spec.work();
        let small_k = simulate_piper(&spec, 8, Some(4));
        let unthrottled = simulate_piper(&spec, 8, None);
        assert!(
            unthrottled.speedup_vs(work) > 2.0 * small_k.speedup_vs(work),
            "unthrottled {} vs throttled {}",
            unthrottled.speedup_vs(work),
            small_k.speedup_vs(work)
        );
    }
}
