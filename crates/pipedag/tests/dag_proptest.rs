//! Property-based tests over arbitrary pipeline dags: the analyzer, the
//! burdened model, the validator, the DOT exporter and the scheduler
//! simulator must agree with each other and with the general laws of
//! work/span analysis on any well-formed dag, not just the paper's examples.

use pipedag::{
    analyze, analyze_burdened, analyze_unthrottled, generators, simulate_piper, to_dot, validate,
    BurdenModel, DotOptions, NodeSpec, PipelineSpec,
};
use proptest::prelude::*;

/// Strategy for arbitrary well-formed pipeline specs.
fn spec_strategy() -> impl Strategy<Value = PipelineSpec> {
    let node = (1u64..4, 1u64..30, any::<bool>());
    let iteration = proptest::collection::vec(node, 1..7);
    proptest::collection::vec(iteration, 1..20).prop_map(|raw| {
        let mut spec = PipelineSpec::new();
        for nodes in raw {
            let mut stage = 0u64;
            let mut column = Vec::with_capacity(nodes.len());
            for (k, (gap, work, wait)) in nodes.into_iter().enumerate() {
                if k > 0 {
                    stage += gap;
                }
                column.push(NodeSpec { stage, work, wait });
            }
            spec.push_iteration(column);
        }
        spec
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn span_is_between_bottleneck_iteration_and_work(spec in spec_strategy()) {
        let a = analyze_unthrottled(&spec);
        prop_assert_eq!(a.work, spec.work());
        prop_assert!(a.span <= a.work);
        // The span is at least the heaviest single iteration (its nodes form
        // a chain of stage edges) and at least the serial Stage-0 chain.
        let heaviest_iteration: u64 = spec
            .iterations
            .iter()
            .map(|it| it.iter().map(|n| n.work).sum())
            .max()
            .unwrap_or(0);
        let control_chain: u64 = spec.iterations.iter().map(|it| it[0].work).sum();
        prop_assert!(a.span >= heaviest_iteration);
        prop_assert!(a.span >= control_chain);
        prop_assert!(a.parallelism() >= 1.0 - 1e-9);
    }

    #[test]
    fn throttling_never_shortens_the_span(spec in spec_strategy()) {
        // Throttling edges only add constraints relative to the unthrottled
        // dag, and K = 1 serialises the whole computation.
        let unthrottled = analyze_unthrottled(&spec).span;
        for k in [1usize, 2, 3, 5, 9, 17] {
            let span = analyze(&spec, Some(k)).span;
            prop_assert!(span >= unthrottled, "K={k}");
            prop_assert!(span <= spec.work(), "K={k}: span cannot exceed the work");
        }
        prop_assert_eq!(analyze(&spec, Some(1)).span, spec.work());
    }

    #[test]
    fn simulator_obeys_greedy_bounds(spec in spec_strategy(), workers in 1usize..9) {
        let a = analyze_unthrottled(&spec);
        let sim = simulate_piper(&spec, workers, None);
        prop_assert_eq!(sim.work_executed, a.work);
        prop_assert!(sim.makespan >= a.span);
        prop_assert!(sim.makespan as f64 >= a.work as f64 / workers as f64 - 1e-9);
        prop_assert!(sim.makespan <= a.work.div_ceil(workers as u64) + a.span);
        prop_assert!(sim.utilization() <= 1.0 + 1e-9);
    }

    #[test]
    fn simulated_throttling_bounds_live_iterations(spec in spec_strategy(), workers in 1usize..9, k in 1usize..8) {
        let sim = simulate_piper(&spec, workers, Some(k));
        prop_assert!(sim.peak_live_iterations <= k);
        // One simulated worker is exactly serial.
        let serial = simulate_piper(&spec, 1, Some(k));
        prop_assert_eq!(serial.makespan, spec.work());
    }

    #[test]
    fn burden_interpolates_between_plain_and_saturated(spec in spec_strategy(), burden in 0u64..10_000) {
        let plain = analyze_unthrottled(&spec);
        let b = analyze_burdened(&spec, &BurdenModel { burden_per_edge: burden, throttle: None });
        prop_assert!(b.burdened_span >= plain.span);
        // Each burdened edge adds at most `burden` to any path, and a path
        // visits fewer vertices than the dag has nodes (plus Stage-0 links).
        let max_edges = (spec.num_nodes() + spec.num_iterations()) as u64;
        prop_assert!(b.burdened_span <= plain.span + burden.saturating_mul(max_edges));
        prop_assert!(b.burdened_parallelism() <= plain.parallelism() + 1e-9);
    }

    #[test]
    fn generated_specs_validate_and_export(spec in spec_strategy()) {
        prop_assert!(validate(&spec).is_empty());
        let dot = to_dot(&spec, &DotOptions { throttle: Some(3), ..DotOptions::default() });
        prop_assert!(dot.starts_with("digraph"));
        // One declaration per real node.
        prop_assert_eq!(dot.matches(" [label=").count(), spec.num_nodes());
        let signature = pipedag::signature(&spec);
        prop_assert!(!signature.is_empty());
        prop_assert!(signature.starts_with('S'), "stage 0 is always serial: {signature}");
    }

    #[test]
    fn random_generator_respects_its_bounds(n in 1usize..30, stages in 1usize..8, work in 1u64..50, seed in any::<u64>()) {
        let spec = generators::random(n, stages, work, seed);
        prop_assert_eq!(spec.num_iterations(), n);
        prop_assert!(validate(&spec).is_empty());
        for it in &spec.iterations {
            prop_assert!(it.len() <= stages);
            prop_assert!(it.iter().all(|node| node.work >= 1 && node.work <= work));
        }
    }
}

#[test]
fn single_node_dag_is_trivial_everywhere() {
    let mut spec = PipelineSpec::new();
    spec.push_iteration(vec![NodeSpec::wait(0, 7)]);
    assert_eq!(analyze_unthrottled(&spec).span, 7);
    assert_eq!(simulate_piper(&spec, 4, Some(2)).makespan, 7);
    assert_eq!(pipedag::signature(&spec), "S");
}
