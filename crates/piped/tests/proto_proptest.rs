//! Wire-codec robustness: every frame type roundtrips through the full
//! wire encoding, and corrupted / truncated / oversized byte streams are
//! rejected with the right [`WireError`] instead of misparsing.

use piped::proto::{read_frame, Frame, MAX_FRAME_BODY};
use piped::{ErrorCode, WireError, WireJobStatus};
use proptest::prelude::*;

const ALL_CODES: [ErrorCode; 8] = [
    ErrorCode::QueueFull,
    ErrorCode::FrameBudget,
    ErrorCode::ShuttingDown,
    ErrorCode::Draining,
    ErrorCode::UnknownWorkload,
    ErrorCode::InvalidInput,
    ErrorCode::InputTooLarge,
    ErrorCode::Protocol,
];

const ALL_STATUSES: [WireJobStatus; 7] = [
    WireJobStatus::Queued,
    WireJobStatus::Running,
    WireJobStatus::Completed,
    WireJobStatus::Cancelled,
    WireJobStatus::Failed,
    WireJobStatus::Expired,
    WireJobStatus::Unknown,
];

/// An arbitrary UTF-8 string (printable ASCII keeps shrinkage readable).
fn string_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(32u8..127, 0..24)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

fn bytes_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..256)
}

/// One arbitrary frame of every type (the selector picks the variant, the
/// remaining draws fill its fields).
#[allow(clippy::type_complexity)]
fn frame_strategy() -> impl Strategy<Value = Frame> {
    (
        0usize..17,
        (any::<u64>(), any::<u64>(), any::<u64>()),
        string_strategy(),
        bytes_strategy(),
        (0u8..3, any::<u32>(), any::<u32>()),
        (0usize..8, 0usize..7),
    )
        .prop_map(
            |(
                variant,
                (ticket, job_id, trace_id),
                text,
                data,
                (priority, throttle, deadline_ms),
                (code_at, status_at),
            )| {
                let code = ALL_CODES[code_at];
                let status = ALL_STATUSES[status_at];
                match variant {
                    0 => Frame::Submit {
                        ticket,
                        workload: text,
                        priority,
                        throttle,
                        deadline_ms,
                        trace_id,
                    },
                    1 => Frame::InputChunk {
                        ticket,
                        data: data.into(),
                    },
                    2 => Frame::InputEof { ticket },
                    3 => Frame::Status { ticket },
                    4 => Frame::Cancel { ticket },
                    5 => Frame::Metrics,
                    6 => Frame::Drain,
                    7 => Frame::Accepted {
                        ticket,
                        job_id,
                        trace_id,
                    },
                    8 => Frame::Rejected {
                        ticket,
                        code,
                        message: text,
                    },
                    9 => Frame::OutputChunk {
                        ticket,
                        data: data.into(),
                    },
                    10 => Frame::JobDone {
                        ticket,
                        status,
                        message: text,
                    },
                    11 => Frame::StatusReply { ticket, status },
                    12 => Frame::MetricsReply { json: text },
                    13 => Frame::DrainDone,
                    14 => Frame::Trace { ticket },
                    15 => Frame::TraceReply { ticket, json: text },
                    _ => Frame::Error {
                        code,
                        message: text,
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn every_frame_roundtrips_through_the_wire(frame in frame_strategy()) {
        let wire = frame.to_wire_bytes();
        let mut reader = std::io::Cursor::new(&wire);
        let decoded = read_frame(&mut reader).expect("valid wire bytes decode");
        prop_assert_eq!(decoded, Some(frame));
        // The reader consumed exactly one frame.
        prop_assert_eq!(reader.position() as usize, wire.len());
    }

    #[test]
    fn frame_sequences_roundtrip_back_to_back(frames in proptest::collection::vec(frame_strategy(), 1..8)) {
        let mut wire = Vec::new();
        for frame in &frames {
            wire.extend_from_slice(&frame.to_wire_bytes());
        }
        let mut reader = std::io::Cursor::new(&wire);
        for frame in &frames {
            let decoded = read_frame(&mut reader).expect("valid stream decodes");
            prop_assert_eq!(decoded.as_ref(), Some(frame));
        }
        prop_assert!(read_frame(&mut reader).expect("clean EOF").is_none());
    }

    #[test]
    fn corrupting_any_body_byte_is_detected(frame in frame_strategy(), noise in (any::<u64>(), 0u8..8)) {
        let mut wire = frame.to_wire_bytes();
        let body_len = wire.len() - 8;
        if body_len == 0 {
            // Tag-only frames still have a 1-byte body; unreachable, but
            // keep the property total.
            return;
        }
        // Flip one bit somewhere in the body (never the length prefix or
        // the CRC itself: those are separate properties).
        let (pick, bit) = noise;
        let at = 4 + (pick as usize % body_len);
        wire[at] ^= 1 << bit;
        let err = read_frame(&mut std::io::Cursor::new(&wire))
            .expect_err("a flipped body bit must not decode");
        prop_assert!(
            matches!(err, WireError::Corrupt { .. }),
            "expected CRC mismatch, got {err:?}"
        );
    }

    #[test]
    fn truncating_a_frame_is_detected(frame in frame_strategy(), cut in any::<u64>()) {
        let wire = frame.to_wire_bytes();
        // Keep at least 1 byte so this is a truncation, not a clean EOF.
        let keep = 1 + (cut as usize % (wire.len() - 1));
        let err = read_frame(&mut std::io::Cursor::new(&wire[..keep]))
            .expect_err("a truncated frame must not decode");
        prop_assert!(
            matches!(err, WireError::Truncated),
            "expected Truncated, got {err:?}"
        );
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_before_allocation(excess in any::<u32>()) {
        let len = (MAX_FRAME_BODY as u32)
            .saturating_add(1)
            .saturating_add(excess % (u32::MAX - MAX_FRAME_BODY as u32 - 1));
        let mut wire = Vec::new();
        wire.extend_from_slice(&len.to_le_bytes());
        // No body at all: the length check must fire before any read of it.
        let err = read_frame(&mut std::io::Cursor::new(&wire))
            .expect_err("an oversized length must not decode");
        prop_assert!(
            matches!(err, WireError::Oversized { .. }),
            "expected Oversized, got {err:?}"
        );
    }
}

#[test]
fn unknown_tags_and_trailing_bytes_are_malformed() {
    // A syntactically valid frame (length + CRC correct) with a bogus tag.
    let body = vec![0x7Fu8, 1, 2, 3];
    let mut wire = Vec::new();
    wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
    wire.extend_from_slice(&body);
    wire.extend_from_slice(&checksum::crc32(&body).to_le_bytes());
    assert!(matches!(
        read_frame(&mut std::io::Cursor::new(&wire)),
        Err(WireError::UnknownFrameType(0x7F))
    ));

    // A valid frame with trailing junk inside the body.
    let mut body = Frame::InputEof { ticket: 9 }.encode_body();
    body.push(0xAA);
    let mut wire = Vec::new();
    wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
    wire.extend_from_slice(&body);
    wire.extend_from_slice(&checksum::crc32(&body).to_le_bytes());
    assert!(matches!(
        read_frame(&mut std::io::Cursor::new(&wire)),
        Err(WireError::Malformed(_))
    ));
}
