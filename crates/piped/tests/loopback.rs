//! End-to-end tests over real loopback TCP: a [`piped::PipedServer`] on an
//! ephemeral port, driven by [`piped::PipedClient`]s.
//!
//! The contracts: every completed job's streamed output is byte-identical
//! to its workload's serial reference; rejections (unknown workload, bad
//! input, draining) arrive as wire-level verdicts rather than hangs; a
//! mid-flight drain completes every admitted job and refuses new ones;
//! cancellation reaches a running job and still yields a JOB_DONE.

use std::sync::Arc;
use std::time::Duration;

use piped::{
    ClientError, ErrorCode, PipedClient, PipedServer, ServerConfig, SubmitOptions, WireJobStatus,
};
use pipeserve::Priority;

/// Starts a server on an ephemeral loopback port, returning its address,
/// handle, and the serving thread (detached; stopped via the handle).
fn start_server(config: ServerConfig) -> (std::net::SocketAddr, piped::ServerHandle) {
    let server = PipedServer::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let handle = server.handle();
    std::thread::Builder::new()
        .name("piped-test-server".to_string())
        .spawn(move || {
            let _ = server.serve();
        })
        .expect("spawn server thread");
    (addr, handle)
}

fn small_config() -> ServerConfig {
    ServerConfig {
        workers: 4,
        max_queue: 64,
        ..ServerConfig::default()
    }
}

/// (workload, input, expected serial-reference output bytes).
fn reference_jobs() -> Vec<(&'static str, Vec<u8>, Vec<u8>)> {
    let dedup_input = workloads::dedup::DedupConfig::tiny().generate_input();
    let ferret_input = workloads::bytes::ferret_input(&workloads::ferret::FerretConfig::tiny());
    let x264_input = workloads::bytes::x264_input(&workloads::x264::X264Config::tiny());
    let fib_input = workloads::bytes::pipefib_input(&workloads::pipefib::PipeFibConfig::tiny());
    ["dedup", "ferret", "x264", "pipefib"]
        .into_iter()
        .zip([dedup_input, ferret_input, x264_input, fib_input])
        .map(|(name, input)| {
            let expected =
                (workloads::bytes::lookup(name).unwrap().serial)(&input).expect("serial reference");
            (name, input, expected)
        })
        .collect()
}

#[test]
fn every_workload_round_trips_byte_identical_over_tcp() {
    let (addr, handle) = start_server(small_config());
    let client = PipedClient::connect(addr).expect("connect");
    for (name, input, expected) in reference_jobs() {
        let job = client
            .submit(&SubmitOptions::new(name).throttle(4), &input)
            .unwrap_or_else(|e| panic!("{name}: submit failed: {e}"));
        let outcome = job
            .wait()
            .unwrap_or_else(|e| panic!("{name}: wait failed: {e}"));
        assert_eq!(
            outcome.status,
            WireJobStatus::Completed,
            "{name}: {outcome:?}"
        );
        assert_eq!(
            outcome.output, expected,
            "{name}: output differs from serial reference"
        );
        assert!(outcome.latency > Duration::ZERO);
    }
    handle.stop();
}

#[test]
fn many_concurrent_jobs_multiplex_on_one_connection() {
    let (addr, handle) = start_server(small_config());
    let client = Arc::new(PipedClient::connect(addr).expect("connect"));
    let jobs = reference_jobs();
    // 12 jobs (3 × each workload), submitted from 4 threads over the one
    // connection, waited in arbitrary order.
    let mut threads = Vec::new();
    for t in 0..4 {
        let client = Arc::clone(&client);
        let jobs = reference_jobs();
        threads.push(std::thread::spawn(move || {
            for (i, (name, input, expected)) in jobs.into_iter().enumerate() {
                if (i + t) % 4 == 3 {
                    continue; // 3 of the 4 workloads per thread
                }
                let priority =
                    [Priority::Interactive, Priority::Normal, Priority::Batch][(i + t) % 3];
                let job = client
                    .submit(
                        &SubmitOptions::new(name).priority(priority).throttle(2),
                        &input,
                    )
                    .expect("submit");
                let outcome = job.wait().expect("wait");
                assert_eq!(outcome.status, WireJobStatus::Completed);
                assert_eq!(outcome.output, expected, "{name} (thread {t})");
            }
        }));
    }
    for thread in threads {
        thread.join().expect("worker thread");
    }
    drop(jobs);
    // Metrics flow over the same connection.
    let json = client.metrics_json().expect("metrics");
    assert!(json.contains("\"jobs_completed\""), "{json}");
    handle.stop();
}

#[test]
fn rejections_are_wire_level_verdicts() {
    let (addr, handle) = start_server(small_config());
    let client = PipedClient::connect(addr).expect("connect");

    let err = client
        .submit(&SubmitOptions::new("no-such-workload"), b"x")
        .expect_err("unknown workload must be rejected");
    assert!(
        matches!(
            &err,
            ClientError::Rejected {
                code: ErrorCode::UnknownWorkload,
                ..
            }
        ),
        "{err:?}"
    );

    let err = client
        .submit(&SubmitOptions::new("ferret"), &[1, 2, 3])
        .expect_err("malformed ferret params must be rejected");
    assert!(
        matches!(
            &err,
            ClientError::Rejected {
                code: ErrorCode::InvalidInput,
                ..
            }
        ),
        "{err:?}"
    );

    // The connection survives rejections: a good job still runs.
    let (name, input, expected) = reference_jobs().remove(3);
    let job = client
        .submit(&SubmitOptions::new(name), &input)
        .expect("submit");
    assert_eq!(job.wait().expect("wait").output, expected);
    handle.stop();
}

#[test]
fn oversized_input_is_rejected_with_input_too_large() {
    let (addr, handle) = start_server(ServerConfig {
        workers: 2,
        max_input_bytes: 4 * 1024,
        ..ServerConfig::default()
    });
    let client = PipedClient::connect(addr).expect("connect");
    let err = client
        .submit(&SubmitOptions::new("dedup"), &vec![7u8; 64 * 1024])
        .expect_err("input above the cap must be rejected");
    assert!(
        matches!(
            &err,
            ClientError::Rejected {
                code: ErrorCode::InputTooLarge,
                ..
            }
        ),
        "{err:?}"
    );
    handle.stop();
}

#[test]
fn cancel_reaches_a_running_job_and_still_answers_job_done() {
    let (addr, handle) = start_server(small_config());
    let client = PipedClient::connect(addr).expect("connect");
    // A long pipe-fib (Θ(n²) work) with a tight throttle: plenty of time
    // for the cancel to land mid-run.
    let input = workloads::bytes::pipefib_input(&workloads::pipefib::PipeFibConfig {
        n: 5_000,
        block_bits: 1,
    });
    let job = client
        .submit(&SubmitOptions::new("pipefib").throttle(2), &input)
        .expect("submit");
    job.cancel(&client).expect("send cancel");
    let outcome = job.wait().expect("wait");
    // Cancelled in the common case; Completed only if the job won the race.
    assert!(
        matches!(
            outcome.status,
            WireJobStatus::Cancelled | WireJobStatus::Completed
        ),
        "{outcome:?}"
    );
    handle.stop();
}

#[test]
fn status_probes_answer_for_live_and_unknown_tickets() {
    let (addr, handle) = start_server(small_config());
    let client = PipedClient::connect(addr).expect("connect");
    let input = workloads::bytes::pipefib_input(&workloads::pipefib::PipeFibConfig {
        n: 3_000,
        block_bits: 1,
    });
    let job = client
        .submit(&SubmitOptions::new("pipefib").throttle(2), &input)
        .expect("submit");
    let status = job.status(&client).expect("status");
    assert!(
        matches!(
            status,
            WireJobStatus::Queued | WireJobStatus::Running | WireJobStatus::Completed
        ),
        "{status:?}"
    );
    let outcome = job.wait().expect("wait");
    assert_eq!(outcome.status, WireJobStatus::Completed);
    // After JOB_DONE the server no longer tracks the ticket.
    let status = job.status(&client).expect("status after done");
    assert!(
        matches!(status, WireJobStatus::Unknown | WireJobStatus::Completed),
        "{status:?}"
    );
    handle.stop();
}

#[test]
fn mid_flight_drain_completes_admitted_jobs_and_rejects_new_submits() {
    let (addr, handle) = start_server(small_config());
    let client = PipedClient::connect(addr).expect("connect");
    let control = PipedClient::connect(addr).expect("connect control");

    // Admit a batch of real jobs…
    let mut accepted = Vec::new();
    for (name, input, expected) in reference_jobs() {
        for _ in 0..2 {
            let job = client
                .submit(&SubmitOptions::new(name).throttle(2), &input)
                .expect("submit before drain");
            accepted.push((job, expected.clone(), name));
        }
    }
    // …then drain from a second connection while they're in flight.
    control.drain().expect("drain");
    assert!(handle.is_draining());

    // Every admitted job completed with byte-identical output.
    for (job, expected, name) in accepted {
        let outcome = job.wait().expect("wait");
        assert_eq!(
            outcome.status,
            WireJobStatus::Completed,
            "{name}: {outcome:?}"
        );
        assert_eq!(outcome.output, expected, "{name}: output differs");
    }

    // New submissions — on either connection — get the draining verdict.
    for submitter in [&client, &control] {
        let err = submitter
            .submit(
                &SubmitOptions::new("pipefib"),
                &workloads::bytes::pipefib_input(&workloads::pipefib::PipeFibConfig::tiny()),
            )
            .expect_err("post-drain submit must be rejected");
        assert!(
            matches!(
                &err,
                ClientError::Rejected {
                    code: ErrorCode::Draining,
                    ..
                }
            ),
            "{err:?}"
        );
    }
    handle.stop();
}

#[test]
fn client_disconnect_cancels_its_outstanding_jobs() {
    let (addr, handle) = start_server(small_config());
    {
        let client = PipedClient::connect(addr).expect("connect");
        let input = workloads::bytes::pipefib_input(&workloads::pipefib::PipeFibConfig {
            n: 5_000,
            block_bits: 1,
        });
        let _job = client
            .submit(&SubmitOptions::new("pipefib").throttle(2), &input)
            .expect("submit");
        // Drop the client (closes the socket) with the job still running.
    }
    // The server must converge back to idle: the orphaned job is cancelled
    // (or finishes) rather than running forever / leaking.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let m = handle.metrics();
        if m.running == 0 && m.queue_depth == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "orphaned job did not drain: {m:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.stop();
}

#[test]
fn cancelling_a_still_queued_job_neither_hangs_nor_leaks() {
    // Frame budget 2 with throttle-2 jobs: the first job owns the whole
    // budget, so the second is deterministically still *queued* when its
    // CANCEL arrives. A queued cancel finalizes synchronously on the
    // connection reader thread (the terminal hook runs right there), which
    // is exactly the self-deadlock regression this test pins.
    let (addr, handle) = start_server(ServerConfig {
        workers: 2,
        frame_budget: Some(2),
        max_queue: 64,
        ..ServerConfig::default()
    });
    let client = PipedClient::connect(addr).expect("connect");
    let long_input = workloads::bytes::pipefib_input(&workloads::pipefib::PipeFibConfig {
        n: 4_000,
        block_bits: 1,
    });
    let running = client
        .submit(&SubmitOptions::new("pipefib").throttle(2), &long_input)
        .expect("submit budget-filling job");
    let queued = client
        .submit(
            &SubmitOptions::new("pipefib").throttle(2),
            &workloads::bytes::pipefib_input(&workloads::pipefib::PipeFibConfig::tiny()),
        )
        .expect("submit queued job");

    queued.cancel(&client).expect("send cancel");
    let outcome = queued.wait().expect("queued job answers after cancel");
    assert_eq!(outcome.status, WireJobStatus::Cancelled, "{outcome:?}");

    // The connection is still fully functional afterwards.
    let status = running.status(&client).expect("status still served");
    assert!(!matches!(status, WireJobStatus::Unknown), "{status:?}");
    running.cancel(&client).expect("cancel the budget filler");
    let outcome = running.wait().expect("wait");
    assert!(
        matches!(
            outcome.status,
            WireJobStatus::Cancelled | WireJobStatus::Completed
        ),
        "{outcome:?}"
    );
    handle.stop();
}

/// Extracts the numeric value of `"key":` from `json`, starting the scan
/// at the first occurrence of `after` (scoping the lookup to one object).
fn json_number(json: &str, after: &str, key: &str) -> f64 {
    let start = json
        .find(after)
        .unwrap_or_else(|| panic!("{after:?} not found in {json}"));
    let needle = format!("\"{key}\":");
    let at = json[start..]
        .find(&needle)
        .map(|i| start + i + needle.len())
        .unwrap_or_else(|| panic!("{key:?} not found after {after:?} in {json}"));
    json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect::<String>()
        .parse()
        .expect("numeric field")
}

#[test]
fn metrics_frame_reports_monotone_latency_quantiles_per_workload() {
    // Caching off: repeats must *execute* to land in the latency series
    // (cache hits never run a pipeline, so they record no run latency).
    let (addr, handle) = start_server(ServerConfig {
        cache: false,
        ..small_config()
    });
    let client = PipedClient::connect(addr).expect("connect");
    // Run every workload a few times so each per-workload series has
    // enough samples for distinct quantiles.
    for _ in 0..3 {
        for (name, input, expected) in reference_jobs() {
            let job = client
                .submit(&SubmitOptions::new(name).throttle(4), &input)
                .expect("submit");
            let outcome = job.wait().expect("wait");
            assert_eq!(outcome.status, WireJobStatus::Completed);
            assert_eq!(outcome.output, expected);
        }
    }
    // Latency is recorded just before the terminal hook fires the JOB_DONE
    // frame, but completion counters can land a hair later; poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let json = loop {
        let json = client.metrics_json().expect("metrics");
        if json.contains("\"dedup\":{\"queue_wait\":{\"count\":3") {
            break json;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "latency series never saw 3 dedup jobs: {json}"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(json.contains("\"latency\":{"), "{json}");
    for name in ["dedup", "ferret", "x264", "pipefib"] {
        let scope = format!("\"{name}\":{{\"queue_wait\"");
        assert!(json.contains(&scope), "{name} series missing: {json}");
        // Every kind carries the quantile fields, and within each kind the
        // quantile estimates are monotone: p50 ≤ p90 ≤ p99 ≤ p999 ≤ max.
        for kind in ["queue_wait", "first_node", "run", "service"] {
            let at = format!("\"{name}\":{{");
            let json_tail = &json[json.find(&at).expect("workload object")..];
            let kind_scope = format!("\"{kind}\":{{");
            let p50 = json_number(json_tail, &kind_scope, "p50_ms");
            let p90 = json_number(json_tail, &kind_scope, "p90_ms");
            let p99 = json_number(json_tail, &kind_scope, "p99_ms");
            let p999 = json_number(json_tail, &kind_scope, "p999_ms");
            let max = json_number(json_tail, &kind_scope, "max_ms");
            assert!(
                p50 <= p90 && p90 <= p99 && p99 <= p999 && p999 <= max,
                "{name}/{kind}: quantiles not monotone: {p50} {p90} {p99} {p999} {max}"
            );
        }
        // Service latency is end-to-end, so it dominates the run time.
        let at = format!("\"{name}\":{{");
        let json_tail = &json[json.find(&at).expect("workload object")..];
        let service_p50 = json_number(json_tail, "\"service\":{", "p50_ms");
        let run_p50 = json_number(json_tail, "\"run\":{", "p50_ms");
        assert!(service_p50 > 0.0, "{name}: service p50 is zero");
        assert!(
            service_p50 >= run_p50,
            "{name}: service p50 {service_p50} < run p50 {run_p50}"
        );
    }
    handle.stop();
}

#[test]
fn metrics_endpoint_serves_parseable_prometheus_text() {
    use std::io::{Read, Write};

    let server = PipedServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            metrics_addr: Some("127.0.0.1:0".to_string()),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let scrape_addr = server.metrics_addr().expect("metrics endpoint bound");
    let handle = server.handle();
    std::thread::spawn(move || {
        let _ = server.serve();
    });

    let client = PipedClient::connect(addr).expect("connect");
    let (name, input, expected) = reference_jobs().remove(0);
    let job = client
        .submit(&SubmitOptions::new(name).throttle(4), &input)
        .expect("submit");
    assert_eq!(job.wait().expect("wait").output, expected);

    // Plain HTTP GET against the scrape endpoint.
    let mut conn = std::net::TcpStream::connect(scrape_addr).expect("connect scrape endpoint");
    conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: piped\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
    assert!(
        response.contains("Content-Type: text/plain; version=0.0.4"),
        "{response}"
    );
    let body = response
        .split_once("\r\n\r\n")
        .expect("header/body split")
        .1;

    // Parse the text format: every non-comment line is `name{labels} value`
    // or `name value`, and histogram bucket series are cumulative in `le`.
    let mut bucket_lines = 0usize;
    for line in body
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("unparseable exposition line: {line:?}");
        });
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "non-numeric sample value in {line:?}"
        );
        if series.contains("_bucket{") {
            bucket_lines += 1;
        }
    }
    assert!(bucket_lines > 0, "no histogram bucket series in:\n{body}");
    assert!(
        body.contains("# TYPE piped_jobs_completed_total counter"),
        "{body}"
    );
    assert!(body.contains("piped_jobs_completed_total 1"), "{body}");
    assert!(
        body.contains("# TYPE piped_latency_seconds histogram"),
        "{body}"
    );
    let series = format!("piped_latency_seconds_bucket{{workload=\"{name}\",kind=\"service\"");
    assert!(body.contains(&series), "{series} missing in:\n{body}");
    assert!(
        body.contains("kind=\"service\",le=\"+Inf\"}"),
        "no +Inf bucket: {body}"
    );
    // Cumulative `le` buckets of one series are monotone non-decreasing.
    let mut last = 0.0f64;
    for line in body.lines().filter(|l| l.starts_with(&series)) {
        let value: f64 = line
            .rsplit_once(' ')
            .expect("sample value")
            .1
            .parse()
            .expect("bucket count");
        assert!(value >= last, "bucket counts not cumulative: {line}");
        last = value;
    }
    handle.stop();
}

/// One span from a TRACE reply.
#[derive(Debug)]
struct SpanRec {
    id: u64,
    parent: u64,
    kind: String,
    start_us: u64,
    end_us: u64,
}

/// Parses the single-line TRACE reply JSON (see [`piped::proto::Frame::TraceReply`])
/// into its trace id and span list. Hand-rolled like the emitter: the
/// format is fixed and flat, so keyed scans are unambiguous.
fn parse_trace_reply(json: &str) -> (String, Vec<SpanRec>) {
    fn num_after(s: &str, key: &str) -> u64 {
        let at = s.find(key).unwrap_or_else(|| panic!("{key:?} not in {s}")) + key.len();
        s[at..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .expect("numeric field")
    }
    fn str_after(s: &str, key: &str) -> String {
        let at = s.find(key).unwrap_or_else(|| panic!("{key:?} not in {s}")) + key.len();
        s[at..]
            .split('"')
            .next()
            .expect("closing quote")
            .to_string()
    }
    let trace_id = str_after(json, "\"trace_id\":\"");
    let spans = json
        .split("{\"id\":")
        .skip(1)
        .map(|frag| SpanRec {
            id: frag
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .expect("span id"),
            parent: num_after(frag, "\"parent\":"),
            kind: str_after(frag, "\"kind\":\""),
            start_us: num_after(frag, "\"start_us\":"),
            end_us: num_after(frag, "\"end_us\":"),
        })
        .collect();
    (trace_id, spans)
}

#[test]
fn trace_frame_returns_a_well_formed_span_tree_for_every_workload() {
    // Tolerance for cross-span timing comparisons: spans reconstruct their
    // start from `coarse_micros() - elapsed`, so independent recordings of
    // the same instant can disagree by the clock reads' skew.
    const TOL_US: u64 = 2_000;

    let trace_dir = std::env::temp_dir().join(format!("piped-trace-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&trace_dir);
    // trace_slow_ms 0 = tail-capture retains every finished job, so TRACE
    // still answers after JOB_DONE (and each trace is dumped to disk).
    let (addr, handle) = start_server(ServerConfig {
        trace_slow_ms: Some(0),
        trace_dir: Some(trace_dir.to_string_lossy().into_owned()),
        ..small_config()
    });
    let client = PipedClient::connect(addr).expect("connect");

    for (i, (name, input, expected)) in reference_jobs().into_iter().enumerate() {
        // Alternate between server-assigned trace ids and a propagated
        // client-supplied trace context.
        let propagated = if i % 2 == 1 {
            0xABCD_0000_0000_0000 + i as u64
        } else {
            0
        };
        let job = client
            .submit(
                &SubmitOptions::new(name).throttle(4).trace_id(propagated),
                &input,
            )
            .unwrap_or_else(|e| panic!("{name}: submit failed: {e}"));
        assert_ne!(job.trace_id(), 0, "{name}: ACCEPTED trace id is zero");
        if propagated != 0 {
            assert_eq!(
                job.trace_id(),
                propagated,
                "{name}: propagated trace id not honoured"
            );
        }
        let outcome = job.wait().expect("wait");
        assert_eq!(outcome.status, WireJobStatus::Completed, "{name}");
        assert_eq!(outcome.output, expected, "{name}");

        let json = job
            .trace(&client)
            .unwrap_or_else(|e| panic!("{name}: trace failed: {e}"));
        let (trace_id, spans) = parse_trace_reply(&json);
        assert_eq!(
            trace_id,
            format!("{:016x}", job.trace_id()),
            "{name}: trace id mismatch in reply"
        );

        // Exactly one root: the job span, id 1, parent 0, covering the
        // whole service time.
        let roots: Vec<&SpanRec> = spans.iter().filter(|s| s.kind == "job").collect();
        assert_eq!(roots.len(), 1, "{name}: want one job span: {spans:?}");
        let root = roots[0];
        assert_eq!(root.id, 1, "{name}");
        assert_eq!(root.parent, 0, "{name}");
        assert!(root.end_us >= root.start_us, "{name}: inverted root span");

        // The executor records queue-wait, admission and run children for
        // every executed job.
        for kind in ["queue_wait", "admission", "run"] {
            assert!(
                spans.iter().any(|s| s.kind == kind),
                "{name}: no {kind} span in {spans:?}"
            );
        }
        // Every child is parented to the root and covered by it.
        for span in spans.iter().filter(|s| s.id != root.id) {
            assert_eq!(span.parent, root.id, "{name}: orphan span {span:?}");
            assert!(span.end_us >= span.start_us, "{name}: inverted {span:?}");
            assert!(
                span.start_us + TOL_US >= root.start_us,
                "{name}: {span:?} starts before root {root:?}"
            );
            assert!(
                span.end_us <= root.end_us + TOL_US,
                "{name}: {span:?} ends after root {root:?}"
            );
        }
        // Durations are consistent: queue wait + run fit in the service
        // span.
        let dur = |kind: &str| {
            spans
                .iter()
                .filter(|s| s.kind == kind)
                .map(|s| s.end_us - s.start_us)
                .sum::<u64>()
        };
        assert!(
            dur("queue_wait") + dur("run") <= (root.end_us - root.start_us) + TOL_US,
            "{name}: queue+run exceed the service span: {spans:?}"
        );

        // The tail-capture dump on disk agrees with the TRACE reply: same
        // trace id in the file name, one Perfetto complete event ("ph":"X")
        // per span.
        let dump_path = trace_dir.join(format!("trace-{trace_id}.json"));
        let dump = std::fs::read_to_string(&dump_path)
            .unwrap_or_else(|e| panic!("{name}: no dump at {dump_path:?}: {e}"));
        assert_eq!(
            dump.matches("\"ph\":\"X\"").count(),
            spans.len(),
            "{name}: dump and TRACE reply disagree on span count"
        );
        assert!(
            dump.contains(&format!("\"trace_id\":\"{trace_id}\"")),
            "{name}: dump carries the wrong trace id"
        );
    }

    // An unknown ticket answers with an empty span list, not an error.
    let json = client
        .trace_json(u64::MAX)
        .expect("trace of unknown ticket");
    let (_, spans) = parse_trace_reply(&json);
    assert!(spans.is_empty(), "unknown ticket yielded spans: {json}");

    let _ = std::fs::remove_dir_all(&trace_dir);
    handle.stop();
}

#[test]
fn sharded_daemon_serves_jobs_and_reports_per_shard_metrics() {
    let (addr, handle) = start_server(ServerConfig {
        workers: 4,
        shards: 2,
        max_queue: 64,
        ..ServerConfig::default()
    });
    let client = PipedClient::connect(addr).expect("connect");
    // Enough distinct jobs that power-of-two-choices must touch both
    // shards; rounds 1..4 repeat round 0's inputs byte-for-byte, so (with
    // each round waiting on the previous) they are deterministic result-
    // cache hits — served without running a pipeline.
    for round in 0..4 {
        for (name, input, expected) in reference_jobs() {
            let job = client
                .submit(&SubmitOptions::new(name).throttle(2), &input)
                .unwrap_or_else(|e| panic!("{name} (round {round}): submit failed: {e}"));
            let outcome = job.wait().expect("wait");
            assert_eq!(
                outcome.status,
                WireJobStatus::Completed,
                "{name}: {outcome:?}"
            );
            assert_eq!(outcome.output, expected, "{name}: sharded output differs");
        }
    }
    // The last JOB_DONE frame is sent a hair before the completion counter
    // is bumped, so give the final bump a bounded moment to land before
    // asserting exact counts.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let sharded = loop {
        let sharded = handle.sharded_metrics();
        if sharded.aggregate.jobs_completed == 4 {
            break sharded;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "completion counters never reached 4: {:?}",
            sharded.aggregate
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(sharded.shards.len(), 2);
    assert_eq!(sharded.placements.iter().sum::<u64>(), 4);
    // Only round 0 ran pipelines; the 12 repeats hit the cache.
    assert_eq!(sharded.aggregate.cache_misses, 4, "{:?}", sharded.aggregate);
    assert_eq!(sharded.aggregate.cache_hits, 12, "{:?}", sharded.aggregate);
    // The METRICS frame of a sharded daemon carries the per-shard breakdown.
    let json = client.metrics_json().expect("metrics");
    assert!(json.contains("\"aggregate\":{"), "{json}");
    assert!(json.contains("\"shards\":["), "{json}");
    assert!(json.contains("\"placements\":["), "{json}");
    assert!(json.contains("\"jobs_completed\":4"), "{json}");
    assert!(json.contains("\"cache_hits\":12"), "{json}");
    handle.stop();
}
