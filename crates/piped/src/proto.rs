//! The wire protocol: length-prefixed, CRC-checked binary frames.
//!
//! Every frame on the wire is
//!
//! ```text
//! ┌──────────────┬──────────────────────────────┬──────────────┐
//! │ len: u32 LE  │ body: tag u8 + payload bytes │ crc: u32 LE  │
//! └──────────────┴──────────────────────────────┴──────────────┘
//! ```
//!
//! where `len` is the body length (bounded by [`MAX_FRAME_BODY`]) and
//! `crc` is [`checksum::crc32`] over the body. Integers are little-endian;
//! strings and byte buffers are `u32-LE length + bytes`. The CRC catches
//! corruption *and* de-sync (a reader that slips a byte sees a garbage tag
//! or checksum, never a silently misparsed frame); since frames cannot be
//! resynchronised after either, both are terminal for the connection.
//!
//! See `crates/piped/DESIGN.md` for the full frame table and the
//! conversation structure (SUBMIT → input chunks → EOF → ACCEPTED →
//! streamed OUTPUT → JOB_DONE, plus STATUS/CANCEL/METRICS/DRAIN/TRACE
//! control frames).

use std::io::{IoSlice, Read, Write};

use checksum::buf::{BufMut, BufPool, Chunk};
use checksum::{crc32, Crc32};

/// Upper bound on a frame body. A peer advertising more is treated as
/// corrupt ([`WireError::Oversized`]) — the length prefix is the first
/// thing read after a de-sync, so an unchecked huge length would turn one
/// flipped bit into a gigabyte allocation.
pub const MAX_FRAME_BODY: usize = 1 << 20;

/// Preferred payload size for streamed input/output chunks: small enough
/// that many jobs interleave fairly on one connection, large enough to
/// amortise framing (4 KiB CRC+header per 64 KiB payload is < 0.02 %).
pub const CHUNK_BYTES: usize = 64 * 1024;

/// Job scheduling classes on the wire (mirrors `pipeserve::Priority`).
pub const PRIORITY_INTERACTIVE: u8 = 0;
/// See [`PRIORITY_INTERACTIVE`].
pub const PRIORITY_NORMAL: u8 = 1;
/// See [`PRIORITY_INTERACTIVE`].
pub const PRIORITY_BATCH: u8 = 2;

/// Why the server refused a request (carried by [`Frame::Rejected`] and
/// [`Frame::Error`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The executor's bounded submission queue is full — backpressure;
    /// retry later or shed load upstream.
    QueueFull = 1,
    /// The requested throttle window `K` alone exceeds the server's frame
    /// budget; the job could never be admitted.
    FrameBudget = 2,
    /// The executor is shutting down.
    ShuttingDown = 3,
    /// The server is draining: admitted jobs run to completion, new
    /// submissions are refused.
    Draining = 4,
    /// No workload with the requested name is registered.
    UnknownWorkload = 5,
    /// The input buffer failed the workload's codec or bounds checks.
    InvalidInput = 6,
    /// The streamed input exceeded the server's per-job input cap.
    InputTooLarge = 7,
    /// The peer violated the protocol (bad frame sequence, unknown
    /// ticket, …).
    Protocol = 8,
}

impl ErrorCode {
    fn from_u8(value: u8) -> Result<ErrorCode, WireError> {
        Ok(match value {
            1 => ErrorCode::QueueFull,
            2 => ErrorCode::FrameBudget,
            3 => ErrorCode::ShuttingDown,
            4 => ErrorCode::Draining,
            5 => ErrorCode::UnknownWorkload,
            6 => ErrorCode::InvalidInput,
            7 => ErrorCode::InputTooLarge,
            8 => ErrorCode::Protocol,
            _ => return Err(WireError::Malformed("unknown error code")),
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::FrameBudget => "frame-budget",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Draining => "draining",
            ErrorCode::UnknownWorkload => "unknown-workload",
            ErrorCode::InvalidInput => "invalid-input",
            ErrorCode::InputTooLarge => "input-too-large",
            ErrorCode::Protocol => "protocol",
        };
        f.write_str(name)
    }
}

impl From<&pipeserve::SubmitError> for ErrorCode {
    /// The wire-level rendering of an executor rejection.
    fn from(err: &pipeserve::SubmitError) -> ErrorCode {
        match err {
            pipeserve::SubmitError::QueueFull(_) => ErrorCode::QueueFull,
            pipeserve::SubmitError::FrameWindowExceedsBudget { .. } => ErrorCode::FrameBudget,
            pipeserve::SubmitError::ShutDown => ErrorCode::ShuttingDown,
        }
    }
}

/// Terminal/live job states on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireJobStatus {
    /// Waiting in the executor's submission queue.
    Queued = 0,
    /// Admitted and executing.
    Running = 1,
    /// Ran every iteration; the streamed output is complete and valid.
    Completed = 2,
    /// Cancelled before or during execution; discard any partial output.
    Cancelled = 3,
    /// The job panicked server-side; discard any partial output.
    Failed = 4,
    /// Expired in the queue past its deadline without running.
    Expired = 5,
    /// The server no longer tracks this ticket (finished earlier, or never
    /// accepted).
    Unknown = 6,
}

impl WireJobStatus {
    fn from_u8(value: u8) -> Result<WireJobStatus, WireError> {
        Ok(match value {
            0 => WireJobStatus::Queued,
            1 => WireJobStatus::Running,
            2 => WireJobStatus::Completed,
            3 => WireJobStatus::Cancelled,
            4 => WireJobStatus::Failed,
            5 => WireJobStatus::Expired,
            6 => WireJobStatus::Unknown,
            _ => return Err(WireError::Malformed("unknown job status")),
        })
    }

    /// True once the job can make no further progress.
    pub fn is_terminal(self) -> bool {
        !matches!(self, WireJobStatus::Queued | WireJobStatus::Running)
    }
}

impl From<pipeserve::JobStatus> for WireJobStatus {
    fn from(status: pipeserve::JobStatus) -> WireJobStatus {
        match status {
            pipeserve::JobStatus::Queued => WireJobStatus::Queued,
            pipeserve::JobStatus::Running => WireJobStatus::Running,
            pipeserve::JobStatus::Completed => WireJobStatus::Completed,
            pipeserve::JobStatus::Cancelled => WireJobStatus::Cancelled,
            pipeserve::JobStatus::Failed => WireJobStatus::Failed,
            pipeserve::JobStatus::Expired => WireJobStatus::Expired,
        }
    }
}

/// One protocol frame. Tickets are client-chosen correlation ids, unique
/// per connection; the server echoes them on every response so many jobs
/// can multiplex over one socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    // -- client → server ---------------------------------------------------
    /// Announce a job: workload name plus scheduling parameters
    /// (`throttle` 0 = executor default `4P`; `deadline_ms` 0 = no queue
    /// deadline). Input bytes follow as [`Frame::InputChunk`]s.
    Submit {
        /// Client-chosen correlation id.
        ticket: u64,
        /// Registry name of the workload (e.g. `"dedup"`).
        workload: String,
        /// Scheduling class: [`PRIORITY_INTERACTIVE`] / normal / batch.
        priority: u8,
        /// Requested throttle window `K` (0 = server default).
        throttle: u32,
        /// Queue deadline in milliseconds (0 = none).
        deadline_ms: u32,
        /// Client-supplied trace context: a nonzero value propagates an
        /// upstream trace id (e.g. from a router in front of several
        /// daemons); 0 asks the server to assign one. Either way the
        /// effective id is echoed in [`Frame::Accepted`].
        trace_id: u64,
    },
    /// A piece of the job's input buffer, in order.
    InputChunk {
        /// Correlation id of the pending SUBMIT.
        ticket: u64,
        /// The next input bytes (a zero-copy view into the received frame
        /// body on the read path; any cheaply-cloneable chunk on the write
        /// path).
        data: Chunk,
    },
    /// End of input: the server may now construct and submit the job.
    InputEof {
        /// Correlation id of the pending SUBMIT.
        ticket: u64,
    },
    /// Ask for the job's current status (answered by
    /// [`Frame::StatusReply`]).
    Status {
        /// Correlation id of the job.
        ticket: u64,
    },
    /// Request cooperative cancellation of the job.
    Cancel {
        /// Correlation id of the job.
        ticket: u64,
    },
    /// Ask for the executor's aggregate metrics (answered by
    /// [`Frame::MetricsReply`]).
    Metrics,
    /// Begin a graceful drain: admitted jobs complete, new SUBMITs are
    /// rejected server-wide, and [`Frame::DrainDone`] answers once idle.
    Drain,
    /// Ask for the job's span tree (answered by [`Frame::TraceReply`]).
    /// Live jobs answer from their in-flight trace buffer; terminal jobs
    /// answer from the server's slow-trace ring if the job was retained
    /// by tail-based capture, else with an empty span list (the tracing
    /// analogue of a STATUS_REPLY `unknown`).
    Trace {
        /// Correlation id of the job.
        ticket: u64,
    },

    // -- server → client ---------------------------------------------------
    /// The job was admitted to the executor.
    Accepted {
        /// Echoed correlation id.
        ticket: u64,
        /// The executor's job id (diagnostics only).
        job_id: u64,
        /// The job's effective trace id (the client's nonzero SUBMIT value
        /// if one was supplied, else server-assigned; never 0). Quote it
        /// in a [`Frame::Trace`] request or grep it in the server's slow
        /// log and trace dumps.
        trace_id: u64,
    },
    /// The job was refused before execution; no output will follow.
    Rejected {
        /// Echoed correlation id.
        ticket: u64,
        /// Why.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// A piece of the job's output stream, in order.
    OutputChunk {
        /// Echoed correlation id.
        ticket: u64,
        /// The next output bytes (a clone of the pipeline's own output
        /// chunk — the payload is never copied between the job and the
        /// socket).
        data: Chunk,
    },
    /// The job reached a terminal state; its output stream is complete.
    JobDone {
        /// Echoed correlation id.
        ticket: u64,
        /// Terminal state.
        status: WireJobStatus,
        /// Panic text for [`WireJobStatus::Failed`], else empty.
        message: String,
    },
    /// Answer to [`Frame::Status`].
    StatusReply {
        /// Echoed correlation id.
        ticket: u64,
        /// Current state ([`WireJobStatus::Unknown`] for untracked
        /// tickets).
        status: WireJobStatus,
    },
    /// Answer to [`Frame::Metrics`]: the executor's
    /// `ServiceMetricsSnapshot::to_json()`.
    MetricsReply {
        /// Single-line JSON object.
        json: String,
    },
    /// Answer to [`Frame::Drain`]: every admitted job has finished.
    DrainDone,
    /// Answer to [`Frame::Trace`]: the job's recorded span tree.
    TraceReply {
        /// Echoed correlation id.
        ticket: u64,
        /// Single-line JSON object: `{"trace_id":"<hex16>","ticket":N,`
        /// `"spans":[{"id","parent","kind","start_us","end_us","arg"},…]}`.
        json: String,
    },
    /// A connection-level protocol error (not tied to a job).
    Error {
        /// Why.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Frame tags (the first body byte).
mod tag {
    pub const SUBMIT: u8 = 0x01;
    pub const INPUT_CHUNK: u8 = 0x02;
    pub const INPUT_EOF: u8 = 0x03;
    pub const STATUS: u8 = 0x04;
    pub const CANCEL: u8 = 0x05;
    pub const METRICS: u8 = 0x06;
    pub const DRAIN: u8 = 0x07;
    pub const TRACE: u8 = 0x08;
    pub const ACCEPTED: u8 = 0x81;
    pub const REJECTED: u8 = 0x82;
    pub const OUTPUT_CHUNK: u8 = 0x83;
    pub const JOB_DONE: u8 = 0x84;
    pub const STATUS_REPLY: u8 = 0x85;
    pub const METRICS_REPLY: u8 = 0x86;
    pub const DRAIN_DONE: u8 = 0x87;
    pub const ERROR: u8 = 0x88;
    pub const TRACE_REPLY: u8 = 0x89;
}

/// What went wrong reading or decoding a frame. Every variant except
/// [`WireError::Io`] means the stream cannot be trusted further; the
/// connection should be closed.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The stream ended in the middle of a frame.
    Truncated,
    /// The advertised body length exceeds [`MAX_FRAME_BODY`].
    Oversized {
        /// The advertised length.
        len: u32,
    },
    /// The body failed its CRC.
    Corrupt {
        /// CRC carried on the wire.
        expected: u32,
        /// CRC computed over the received body.
        actual: u32,
    },
    /// The body's first byte is not a known frame tag.
    UnknownFrameType(u8),
    /// The body parsed structurally but violated a field constraint.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::Oversized { len } => {
                write!(
                    f,
                    "frame body of {len} bytes exceeds the {MAX_FRAME_BODY} cap"
                )
            }
            WireError::Corrupt { expected, actual } => {
                write!(
                    f,
                    "frame CRC mismatch: wire {expected:#010x}, computed {actual:#010x}"
                )
            }
            WireError::UnknownFrameType(tag) => write!(f, "unknown frame tag {tag:#04x}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

// -------------------------------------------------------------- encoding --

fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out.extend_from_slice(data);
}

impl Frame {
    /// Encodes the frame body (tag + payload), without length prefix or
    /// CRC, into one contiguous buffer. The hot write path never calls
    /// this — [`write_frame`] scatter-writes the header and the payload
    /// chunk separately; this form serves tests and callers that want the
    /// assembled bytes.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        if let Some(payload) = self.encode_header_into(&mut out) {
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }

    /// Scatter-encode step: writes the frame's *header* (tag + every field
    /// up to, but not including, a trailing byte payload) into `out` and
    /// returns the payload chunk if the frame carries one. The full body is
    /// `header ++ u32-LE payload length ++ payload bytes` when a payload is
    /// returned, else just `header` — [`write_frame`] flushes that shape
    /// with one vectored write, borrowing the payload in place.
    fn encode_header_into<'a>(&'a self, out: &mut Vec<u8>) -> Option<&'a Chunk> {
        match self {
            Frame::Submit {
                ticket,
                workload,
                priority,
                throttle,
                deadline_ms,
                trace_id,
            } => {
                out.push(tag::SUBMIT);
                out.extend_from_slice(&ticket.to_le_bytes());
                put_bytes(out, workload.as_bytes());
                out.push(*priority);
                out.extend_from_slice(&throttle.to_le_bytes());
                out.extend_from_slice(&deadline_ms.to_le_bytes());
                out.extend_from_slice(&trace_id.to_le_bytes());
            }
            Frame::InputChunk { ticket, data } => {
                out.push(tag::INPUT_CHUNK);
                out.extend_from_slice(&ticket.to_le_bytes());
                return Some(data);
            }
            Frame::InputEof { ticket } => {
                out.push(tag::INPUT_EOF);
                out.extend_from_slice(&ticket.to_le_bytes());
            }
            Frame::Status { ticket } => {
                out.push(tag::STATUS);
                out.extend_from_slice(&ticket.to_le_bytes());
            }
            Frame::Cancel { ticket } => {
                out.push(tag::CANCEL);
                out.extend_from_slice(&ticket.to_le_bytes());
            }
            Frame::Metrics => out.push(tag::METRICS),
            Frame::Drain => out.push(tag::DRAIN),
            Frame::Trace { ticket } => {
                out.push(tag::TRACE);
                out.extend_from_slice(&ticket.to_le_bytes());
            }
            Frame::Accepted {
                ticket,
                job_id,
                trace_id,
            } => {
                out.push(tag::ACCEPTED);
                out.extend_from_slice(&ticket.to_le_bytes());
                out.extend_from_slice(&job_id.to_le_bytes());
                out.extend_from_slice(&trace_id.to_le_bytes());
            }
            Frame::Rejected {
                ticket,
                code,
                message,
            } => {
                out.push(tag::REJECTED);
                out.extend_from_slice(&ticket.to_le_bytes());
                out.push(*code as u8);
                put_bytes(out, message.as_bytes());
            }
            Frame::OutputChunk { ticket, data } => {
                out.push(tag::OUTPUT_CHUNK);
                out.extend_from_slice(&ticket.to_le_bytes());
                return Some(data);
            }
            Frame::JobDone {
                ticket,
                status,
                message,
            } => {
                out.push(tag::JOB_DONE);
                out.extend_from_slice(&ticket.to_le_bytes());
                out.push(*status as u8);
                put_bytes(out, message.as_bytes());
            }
            Frame::StatusReply { ticket, status } => {
                out.push(tag::STATUS_REPLY);
                out.extend_from_slice(&ticket.to_le_bytes());
                out.push(*status as u8);
            }
            Frame::MetricsReply { json } => {
                out.push(tag::METRICS_REPLY);
                put_bytes(out, json.as_bytes());
            }
            Frame::DrainDone => out.push(tag::DRAIN_DONE),
            Frame::TraceReply { ticket, json } => {
                out.push(tag::TRACE_REPLY);
                out.extend_from_slice(&ticket.to_le_bytes());
                put_bytes(out, json.as_bytes());
            }
            Frame::Error { code, message } => {
                out.push(tag::ERROR);
                out.push(*code as u8);
                put_bytes(out, message.as_bytes());
            }
        }
        None
    }

    /// Encodes the full wire representation: length prefix + body + CRC.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let body = self.encode_body();
        debug_assert!(body.len() <= MAX_FRAME_BODY, "frame body exceeds cap");
        let mut out = Vec::with_capacity(8 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out
    }

    /// Decodes a frame body (tag + payload, no length prefix / CRC). Byte
    /// payloads come out as zero-copy [`Chunk`] slices of `body` — decoding
    /// an input/output chunk never copies the payload.
    pub fn decode_body(body: &Chunk) -> Result<Frame, WireError> {
        let mut cursor = Cursor { body, at: 0 };
        let tag = cursor.u8()?;
        let frame = match tag {
            tag::SUBMIT => {
                let ticket = cursor.u64()?;
                let workload = cursor.string()?;
                let priority = cursor.u8()?;
                if priority > PRIORITY_BATCH {
                    return Err(WireError::Malformed("priority out of range"));
                }
                Frame::Submit {
                    ticket,
                    workload,
                    priority,
                    throttle: cursor.u32()?,
                    deadline_ms: cursor.u32()?,
                    trace_id: cursor.u64()?,
                }
            }
            tag::INPUT_CHUNK => Frame::InputChunk {
                ticket: cursor.u64()?,
                data: cursor.bytes()?,
            },
            tag::INPUT_EOF => Frame::InputEof {
                ticket: cursor.u64()?,
            },
            tag::STATUS => Frame::Status {
                ticket: cursor.u64()?,
            },
            tag::CANCEL => Frame::Cancel {
                ticket: cursor.u64()?,
            },
            tag::METRICS => Frame::Metrics,
            tag::DRAIN => Frame::Drain,
            tag::TRACE => Frame::Trace {
                ticket: cursor.u64()?,
            },
            tag::ACCEPTED => Frame::Accepted {
                ticket: cursor.u64()?,
                job_id: cursor.u64()?,
                trace_id: cursor.u64()?,
            },
            tag::REJECTED => Frame::Rejected {
                ticket: cursor.u64()?,
                code: ErrorCode::from_u8(cursor.u8()?)?,
                message: cursor.string()?,
            },
            tag::OUTPUT_CHUNK => Frame::OutputChunk {
                ticket: cursor.u64()?,
                data: cursor.bytes()?,
            },
            tag::JOB_DONE => Frame::JobDone {
                ticket: cursor.u64()?,
                status: WireJobStatus::from_u8(cursor.u8()?)?,
                message: cursor.string()?,
            },
            tag::STATUS_REPLY => Frame::StatusReply {
                ticket: cursor.u64()?,
                status: WireJobStatus::from_u8(cursor.u8()?)?,
            },
            tag::METRICS_REPLY => Frame::MetricsReply {
                json: cursor.string()?,
            },
            tag::DRAIN_DONE => Frame::DrainDone,
            tag::TRACE_REPLY => Frame::TraceReply {
                ticket: cursor.u64()?,
                json: cursor.string()?,
            },
            tag::ERROR => Frame::Error {
                code: ErrorCode::from_u8(cursor.u8()?)?,
                message: cursor.string()?,
            },
            other => return Err(WireError::UnknownFrameType(other)),
        };
        if cursor.at != body.len() {
            return Err(WireError::Malformed("trailing bytes after frame payload"));
        }
        Ok(frame)
    }
}

/// Bounds-checked little-endian reader over a frame body.
struct Cursor<'a> {
    body: &'a Chunk,
    at: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.body.len())
            .ok_or(WireError::Malformed("payload shorter than its fields"))?;
        let slice = &self.body[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// A length-prefixed byte payload as a zero-copy view of the body.
    fn bytes(&mut self) -> Result<Chunk, WireError> {
        let len = self.u32()? as usize;
        let start = self.at;
        self.take(len)?;
        Ok(self.body.slice(start..start + len))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| WireError::Malformed("non-UTF-8 string"))
    }
}

// -------------------------------------------------------------------- io --

/// Writes every byte of `bufs`, preferring a single vectored write.
/// Handles partial writes by rebuilding the remaining scatter list (stable
/// Rust has no `IoSlice::advance`), which in the common case costs nothing:
/// a frame almost always leaves in one `writev`.
fn write_all_vectored(writer: &mut impl Write, bufs: &[&[u8]]) -> std::io::Result<()> {
    let total: usize = bufs.iter().map(|b| b.len()).sum();
    let mut written = 0usize;
    while written < total {
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(bufs.len());
        let mut skip = written;
        for buf in bufs {
            if skip >= buf.len() {
                skip -= buf.len();
                continue;
            }
            slices.push(IoSlice::new(&buf[skip..]));
            skip = 0;
        }
        match writer.write_vectored(&slices) {
            Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Writes one frame (length prefix + body + CRC) with a single vectored
/// write: `[prefix + header, borrowed payload bytes, CRC]`. A frame
/// carrying a payload chunk never copies it into an assembly buffer — the
/// CRC folds incrementally over header then payload, and the socket reads
/// the payload from the chunk's own allocation. The caller flushes.
pub fn write_frame(writer: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    // head = length prefix placeholder + header fields.
    let mut head = Vec::with_capacity(64);
    head.extend_from_slice(&[0u8; 4]);
    let payload = frame.encode_header_into(&mut head);
    let payload_bytes: &[u8] = match payload {
        Some(chunk) => chunk,
        None => &[],
    };
    if payload.is_some() {
        head.extend_from_slice(&(payload_bytes.len() as u32).to_le_bytes());
    }
    let body_len = head.len() - 4 + payload_bytes.len();
    debug_assert!(body_len <= MAX_FRAME_BODY, "frame body exceeds cap");
    head[0..4].copy_from_slice(&(body_len as u32).to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&head[4..]);
    crc.update(payload_bytes);
    let crc = crc.finalize().to_le_bytes();
    write_all_vectored(writer, &[&head, payload_bytes, &crc])
}

/// Reads one frame. Returns `Ok(None)` on a clean end-of-stream (EOF at a
/// frame boundary); EOF anywhere inside a frame is [`WireError::Truncated`].
pub fn read_frame(reader: &mut impl Read) -> Result<Option<Frame>, WireError> {
    let Some(len) = read_frame_len(reader)? else {
        return Ok(None);
    };
    finish_frame(reader, len, BufMut::with_capacity(len as usize))
}

/// [`read_frame`] with the body buffer checked out of `pool`: the frame
/// body lands in a pooled allocation, and the decoded frame's payload
/// chunk is a zero-copy view of it that returns the buffer to the pool
/// when the last reference drops.
pub fn read_frame_pooled(
    reader: &mut impl Read,
    pool: &BufPool,
) -> Result<Option<Frame>, WireError> {
    let Some(len) = read_frame_len(reader)? else {
        return Ok(None);
    };
    finish_frame(reader, len, pool.get(len as usize))
}

/// Reads the 4-byte length prefix, distinguishing clean EOF (`None`) from
/// truncation, and bounds-checks it.
fn read_frame_len(reader: &mut impl Read) -> Result<Option<u32>, WireError> {
    // Read the first length byte alone so a clean EOF is distinguishable
    // from a truncation.
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 1 {
        match reader.read(&mut len_buf[..1]) {
            Ok(0) => return Ok(None),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    reader.read_exact(&mut len_buf[1..])?;
    let len = u32::from_le_bytes(len_buf);
    if len as usize > MAX_FRAME_BODY {
        return Err(WireError::Oversized { len });
    }
    Ok(Some(len))
}

/// Reads body + CRC into `buf`, verifies, and decodes.
fn finish_frame(
    reader: &mut impl Read,
    len: u32,
    mut buf: BufMut,
) -> Result<Option<Frame>, WireError> {
    buf.resize(len as usize, 0);
    reader.read_exact(&mut buf)?;
    let mut crc_buf = [0u8; 4];
    reader.read_exact(&mut crc_buf)?;
    let expected = u32::from_le_bytes(crc_buf);
    let actual = crc32(&buf);
    if expected != actual {
        return Err(WireError::Corrupt { expected, actual });
    }
    let body = buf.freeze();
    Frame::decode_body(&body).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Noop;
    impl piper::PipelineIteration for Noop {
        fn run_node(&mut self, _stage: u64) -> piper::NodeOutcome {
            piper::NodeOutcome::Done
        }
    }

    #[test]
    fn submit_error_maps_to_wire_codes() {
        let spec = pipeserve::JobSpec::new(piper::PipeOptions::default(), |_| {
            piper::Stage0::<Noop>::Stop
        });
        assert_eq!(
            ErrorCode::from(&pipeserve::SubmitError::QueueFull(Box::new(spec))),
            ErrorCode::QueueFull
        );
        assert_eq!(
            ErrorCode::from(&pipeserve::SubmitError::FrameWindowExceedsBudget {
                window: 64,
                budget: 32
            }),
            ErrorCode::FrameBudget
        );
        assert_eq!(
            ErrorCode::from(&pipeserve::SubmitError::ShutDown),
            ErrorCode::ShuttingDown
        );
    }

    #[test]
    fn clean_eof_reads_as_none_and_crc_is_cross_checked() {
        let frame = Frame::Metrics;
        let wire = frame.to_wire_bytes();
        let mut cursor = std::io::Cursor::new(wire.clone());
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(frame));
        assert!(read_frame(&mut cursor).unwrap().is_none());
        // The trailing 4 bytes really are crc32 of the body.
        let body_len = u32::from_le_bytes(wire[0..4].try_into().unwrap()) as usize;
        let body = &wire[4..4 + body_len];
        let crc = u32::from_le_bytes(wire[4 + body_len..].try_into().unwrap());
        assert_eq!(crc, checksum::crc32(body));
    }
}
