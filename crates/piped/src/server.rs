//! The serving daemon: a TCP listener multiplexing many connections onto
//! one shared [`pipeserve::Submit`] executor (a sharded service behind a
//! content-addressed result cache).
//!
//! ## Caching and coalescing
//!
//! Every workload is deterministic and byte-verified against its serial
//! reference, so a job is content-addressed: the reader hashes streamed
//! `INPUT_CHUNK`s incrementally (SHA-256) and, at `INPUT_EOF`, submits a
//! *keyed* job whose [`pipeserve::ContentKey`] is the workload name plus
//! the input digest. The shared [`pipeserve::CachedService`] then answers
//! repeated submissions from its bounded LRU of verified outputs and
//! coalesces concurrent identical submissions onto one running pipeline —
//! each connection still receives its own OUTPUT stream and JOB_DONE.
//! [`ServerConfig::cache`] disables keying entirely (every submission runs
//! a pipeline); [`ServerConfig::cache_bytes`] overrides the byte budget.
//!
//! ## Threading model
//!
//! One accept loop ([`PipedServer::serve`]), two threads per connection (a
//! frame reader and a frame writer), and the executor's own pool/dispatch
//! threads. Job output never touches the reader: each workload pipeline's
//! final serial stage encodes items and pushes `OUTPUT` frames into the
//! connection's [`Outbound`] queue, and the job's terminal hook pushes
//! `JOB_DONE` the same way, so completions are event-driven — no waiter
//! thread per job.
//!
//! ## Backpressure
//!
//! The outbound queue bounds *data* frames ([`ServerConfig::output_window`]):
//! a pipeline whose client reads slowly blocks in its own serial output
//! stage, which throttles exactly that pipeline (its ring admits at most
//! `K` in-flight iterations) while control frames (ACCEPTED, JOB_DONE,
//! STATUS_REPLY, …) bypass the window so bookkeeping never deadlocks
//! behind data. Input is bounded by [`ServerConfig::max_input_bytes`] and
//! the executor's bounded submission queue provides admission-level
//! backpressure (`REJECTED queue-full`).
//!
//! ## Drain
//!
//! A `DRAIN` frame (or [`ServerHandle::drain`]) puts the whole server in
//! draining mode: every connection's new SUBMITs are rejected with
//! `draining`, admitted jobs run to completion, and `DRAIN_DONE` answers
//! once the executor is idle. With
//! [`ServerConfig::exit_on_drain`] the accept loop then stops — the
//! SIGTERM-equivalent shutdown used by CI.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use checksum::buf::{BufPool, Chunk};
use pipeserve::{
    CachedService, ContentKey, JobResult, JobSpec, Priority, ShardedService, SinkLaunchFn, Submit,
};
use workloads::bytes::{ByteJob, ByteJobError, ByteSink};

use crate::proto::{
    read_frame_pooled, write_frame, ErrorCode, Frame, WireJobStatus, CHUNK_BYTES, PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
};

/// Tuning knobs of a [`PipedServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Total pool workers across all shards (0 = machine parallelism).
    /// Divided evenly over [`ServerConfig::shards`] by ceiling division,
    /// so a total that is not a multiple of the shard count rounds **up**
    /// to the next one (every shard needs at least one worker slot and
    /// shards are symmetric): `--workers 4 --shards 3` yields 3×2 = 6
    /// worker slots, not 4.
    pub workers: usize,
    /// Executor shards. With more than one shard the daemon runs a
    /// [`pipeserve::ShardedService`]: submissions are placed by weighted
    /// power-of-two-choices, each shard keeps its own frame budget and
    /// queue, pools run an elastic worker band `[1, workers/shards]`
    /// supervised by queue depth, and the METRICS frame carries the
    /// per-shard breakdown (`{"aggregate":…,"shards":[…],"placements":…}`).
    pub shards: usize,
    /// Global frame budget (`Σ K_j` cap); `None` = executor default.
    pub frame_budget: Option<usize>,
    /// Bounded submission-queue depth of the executor.
    pub max_queue: usize,
    /// Per-job cap on streamed input bytes. The same value also caps the
    /// *total* buffered input of a connection's pending (pre-EOF)
    /// submissions, and [`ServerConfig::max_pending_per_conn`] caps their
    /// count — admission control only engages at EOF, so these bounds are
    /// what keeps a client that opens tickets without ever finishing them
    /// from growing server memory without limit.
    pub max_input_bytes: usize,
    /// Cap on concurrently pending (input-streaming) submissions per
    /// connection.
    pub max_pending_per_conn: usize,
    /// Per-connection cap on queued OUTPUT frames before job pipelines
    /// block (the backpressure window).
    pub output_window: usize,
    /// Content-address submissions (SHA-256 of the streamed input) so the
    /// shared result cache and request coalescing apply. Off, every
    /// submission runs its own pipeline.
    pub cache: bool,
    /// Byte budget of the result cache; `None` derives it from the frame
    /// budget (see [`pipeserve::CachedService::new`]).
    pub cache_bytes: Option<usize>,
    /// Stop the accept loop after a drain completes.
    pub exit_on_drain: bool,
    /// Bind a hand-rolled HTTP listener on this address and serve the
    /// executor's metrics in Prometheus text format on every GET (see
    /// [`crate::scrape`]). `None` (the default) disables the endpoint.
    pub metrics_addr: Option<String>,
    /// Log every job whose end-to-end service time (submit → terminal)
    /// exceeds this many milliseconds as one structured stderr line
    /// (ticket, workload, status, timings, input bytes, trace id). `None`
    /// disables the slow log.
    pub slow_log_ms: Option<u64>,
    /// Tail-based trace capture: retain the full span tree of every job
    /// whose service time reaches this many milliseconds (in a bounded
    /// ring of the most recent [`SLOW_TRACE_RING`] slow traces, answerable
    /// by a TRACE frame after the job finished, and dumped to
    /// [`ServerConfig::trace_dir`] when set). `0` retains every job;
    /// `None` disables retention — TRACE then only answers live jobs.
    pub trace_slow_ms: Option<u64>,
    /// Directory receiving one Perfetto-loadable JSON file
    /// (`trace-<id>.json`, see [`obs::perfetto_json`]) per retained slow
    /// trace. `None` keeps retained traces in memory only.
    pub trace_dir: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            shards: 1,
            frame_budget: None,
            max_queue: 256,
            max_input_bytes: 16 << 20,
            max_pending_per_conn: 32,
            output_window: 64,
            cache: true,
            cache_bytes: None,
            exit_on_drain: false,
            metrics_addr: None,
            slow_log_ms: None,
            trace_slow_ms: None,
            trace_dir: None,
        }
    }
}

/// Capacity of the slow-trace ring: how many tail-captured span trees the
/// server keeps for post-hoc TRACE queries and `--trace-dir` dumps.
pub const SLOW_TRACE_RING: usize = 32;

/// One tail-captured trace: the finished job's identity plus its dumped
/// span tree, held in the server's bounded slow-trace ring.
struct SlowTrace {
    ticket: u64,
    trace_id: u64,
    spans: Vec<obs::Span>,
}

/// Shared state between the accept loop, connection threads and the
/// control handle.
struct Shared {
    service: CachedService<ShardedService>,
    config: ServerConfig,
    /// Size-classed buffer pool feeding every connection's frame reads;
    /// recycled allocations come back when the last [`Chunk`] view drops.
    pool: BufPool,
    /// Set by DRAIN: reject new SUBMITs server-wide.
    draining: AtomicBool,
    /// Set to stop the accept loop.
    stop: AtomicBool,
    /// splitmix64 state for server-assigned trace ids (seeded from the
    /// wall clock at bind).
    trace_seed: Mutex<u64>,
    /// Tail-captured span trees of the last [`SLOW_TRACE_RING`] slow jobs.
    slow_traces: Mutex<VecDeque<SlowTrace>>,
    /// Process start, exported as `piped_start_time_seconds`.
    started_at: std::time::SystemTime,
}

impl Shared {
    /// The one drain sequence, shared by the DRAIN wire frame and
    /// [`ServerHandle::drain`]: flag first (new SUBMITs rejected), block
    /// until the executor is idle, then honour `exit_on_drain`.
    fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
        self.service.drain();
        if self.config.exit_on_drain {
            self.stop.store(true, Ordering::Release);
        }
    }

    /// A fresh nonzero trace id (0 means "server-assign" on the wire, so
    /// it is never handed out).
    fn next_trace_id(&self) -> u64 {
        let mut seed = self.trace_seed.lock().unwrap();
        loop {
            let id = obs::splitmix64(&mut seed);
            if id != 0 {
                return id;
            }
        }
    }

    /// Retains a finished job's span tree in the slow-trace ring and, when
    /// configured, writes its Perfetto dump to `trace_dir`.
    fn retain_slow_trace(&self, ticket: u64, trace_id: u64, spans: Vec<obs::Span>) {
        if let Some(dir) = &self.config.trace_dir {
            let path = std::path::Path::new(dir).join(format!("trace-{trace_id:016x}.json"));
            let _ = std::fs::write(path, obs::perfetto_json(trace_id, &spans));
        }
        let mut ring = self.slow_traces.lock().unwrap();
        while ring.len() >= SLOW_TRACE_RING {
            ring.pop_front();
        }
        ring.push_back(SlowTrace {
            ticket,
            trace_id,
            spans,
        });
    }

    /// Answers a TRACE frame for a ticket that is no longer live: the most
    /// recent tail-captured trace with that ticket, if any survives in the
    /// ring.
    fn slow_trace_json(&self, ticket: u64) -> Option<String> {
        let ring = self.slow_traces.lock().unwrap();
        ring.iter()
            .rev()
            .find(|t| t.ticket == ticket)
            .map(|t| trace_json(t.trace_id, t.ticket, &t.spans))
    }
}

/// Renders a TRACE_REPLY body: the span tree as one JSON object. Kinds are
/// symbolic names, times are microseconds on the process-epoch clock
/// ([`obs::coarse_micros`]), and the trace id is zero-padded hex — the
/// same form it takes in the slow log and in `trace_dir` file names.
fn trace_json(trace_id: u64, ticket: u64, spans: &[obs::Span]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(96 + spans.len() * 96);
    let _ = write!(
        out,
        "{{\"trace_id\":\"{trace_id:016x}\",\"ticket\":{ticket},\"spans\":["
    );
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"parent\":{},\"kind\":\"{}\",\"start_us\":{},\"end_us\":{},\"arg\":{}}}",
            span.id,
            span.parent,
            span.kind.name(),
            span.start_micros,
            span.end_micros,
            span.arg
        );
    }
    out.push_str("]}");
    out
}

/// A control handle on a running server, usable from any thread (tests,
/// signal handlers, the daemon binary).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Puts the server in draining mode and blocks until every admitted
    /// job has finished (the programmatic equivalent of a DRAIN frame).
    pub fn drain(&self) {
        self.shared.begin_drain();
    }

    /// True once a drain has started.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Stops the accept loop (existing connections keep running until
    /// their clients disconnect).
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
    }

    /// The executor's aggregate metrics (field-wise sum over the shards,
    /// with the cache-layer counters filled in).
    pub fn metrics(&self) -> pipeserve::ServiceMetricsSnapshot {
        self.shared.service.metrics()
    }

    /// The executor's full sharded snapshot (per-shard breakdown +
    /// placement counts; the aggregate carries the cache counters).
    pub fn sharded_metrics(&self) -> pipeserve::ShardedMetricsSnapshot {
        let mut snapshot = self.shared.service.inner().sharded_metrics();
        snapshot.aggregate = self.shared.service.metrics();
        snapshot
    }

    /// The result cache's own statistics (hits, misses, evictions, bytes).
    pub fn cache_stats(&self) -> pipeserve::CacheStats {
        self.shared.service.cache_stats()
    }
}

/// The serving daemon; see the [module docs](self).
pub struct PipedServer {
    listener: TcpListener,
    shared: Arc<Shared>,
    metrics_addr: Option<std::net::SocketAddr>,
}

impl PipedServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// builds the shared executor.
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<PipedServer> {
        let listener = TcpListener::bind(addr)?;
        let metrics_listener = match &config.metrics_addr {
            Some(addr) => Some(TcpListener::bind(addr.as_str())?),
            None => None,
        };
        let shards = config.shards.max(1);
        let total_workers = if config.workers > 0 {
            config.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let mut builder = ShardedService::builder()
            .shards(shards)
            .workers_per_shard(total_workers.div_ceil(shards).max(1))
            .max_queue_per_shard(config.max_queue.div_ceil(shards).max(1));
        if shards > 1 {
            // Sharded daemons run elastic pools: each shard starts at one
            // worker and the supervisor grows it under queue pressure, so
            // an imbalanced tenant mix does not pin idle threads.
            builder = builder.elastic_workers(1);
        }
        if let Some(frames) = config.frame_budget {
            builder = builder.total_frame_budget(frames);
        }
        let sharded = builder.build();
        let service = match config.cache_bytes {
            Some(bytes) => CachedService::with_capacity(sharded, bytes),
            None => CachedService::new(sharded),
        };
        if let Some(dir) = &config.trace_dir {
            std::fs::create_dir_all(dir)?;
        }
        let started_at = std::time::SystemTime::now();
        // Seed the trace-id generator from the wall clock; splitmix64
        // turns even adjacent seeds into well-spread id streams.
        let seed = started_at
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        let shared = Arc::new(Shared {
            service,
            config,
            pool: BufPool::new(),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            trace_seed: Mutex::new(seed),
            slow_traces: Mutex::new(VecDeque::new()),
            started_at,
        });
        let metrics_addr = match metrics_listener {
            Some(listener) => {
                let bound = listener.local_addr()?;
                let scrape_shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("piped-metrics".to_string())
                    .spawn(move || serve_scrapes(listener, scrape_shared))
                    .expect("failed to spawn metrics scrape thread");
                Some(bound)
            }
            None => None,
        };
        Ok(PipedServer {
            listener,
            shared,
            metrics_addr,
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound address of the Prometheus scrape endpoint, when
    /// [`ServerConfig::metrics_addr`] was set (read the ephemeral port
    /// from here).
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.metrics_addr
    }

    /// A cloneable control handle.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until [`ServerHandle::stop`] (or a drain with
    /// [`ServerConfig::exit_on_drain`]). Each connection gets a reader and
    /// a writer thread; connection threads outlive this call only until
    /// their client disconnects.
    pub fn serve(&self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        loop {
            if self.shared.stop.load(Ordering::Acquire) {
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    std::thread::Builder::new()
                        .name("piped-conn".to_string())
                        .spawn(move || serve_connection(stream, shared))
                        .expect("failed to spawn connection thread");
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

// -------------------------------------------------- per-connection state --

/// The connection's ordered outbound frame queue. Control frames are
/// never blocked (so terminal hooks running on pool workers cannot stall);
/// data frames block the pushing pipeline once `window` of them are
/// queued — the per-connection backpressure.
struct Outbound {
    state: Mutex<OutboundState>,
    cv: Condvar,
    window: usize,
}

struct OutboundState {
    queue: VecDeque<Frame>,
    data_queued: usize,
    /// The writer failed (peer gone): drop everything, unblock pushers.
    dead: bool,
    /// No more frames will be pushed; the writer exits after flushing.
    closed: bool,
}

impl Outbound {
    fn new(window: usize) -> Outbound {
        Outbound {
            state: Mutex::new(OutboundState {
                queue: VecDeque::new(),
                data_queued: 0,
                dead: false,
                closed: false,
            }),
            cv: Condvar::new(),
            window: window.max(1),
        }
    }

    /// Queues a control frame (never blocks on the data window).
    fn push_control(&self, frame: Frame) {
        let mut state = self.state.lock().unwrap();
        if state.dead || state.closed {
            return;
        }
        state.queue.push_back(frame);
        self.cv.notify_all();
    }

    /// Queues a data frame, blocking while the window is full. Called from
    /// pipeline serial stages on pool workers; a dead/closed connection
    /// turns the write into a no-op so pipelines always drain.
    fn push_data(&self, frame: Frame) {
        let mut state = self.state.lock().unwrap();
        while state.data_queued >= self.window && !state.dead && !state.closed {
            state = self.cv.wait(state).unwrap();
        }
        if state.dead || state.closed {
            return;
        }
        state.data_queued += 1;
        state.queue.push_back(frame);
        self.cv.notify_all();
    }

    /// Writer side: pops the next frame, or `None` once closed/dead and
    /// empty.
    fn pop(&self) -> Option<Frame> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(frame) = state.queue.pop_front() {
                if matches!(frame, Frame::OutputChunk { .. }) {
                    state.data_queued -= 1;
                    self.cv.notify_all();
                }
                return Some(frame);
            }
            if state.closed || state.dead {
                return None;
            }
            state = self.cv.wait(state).unwrap();
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.closed = true;
        self.cv.notify_all();
    }

    fn mark_dead(&self) {
        let mut state = self.state.lock().unwrap();
        state.dead = true;
        state.queue.clear();
        state.data_queued = 0;
        self.cv.notify_all();
    }
}

/// Per-connection state shared with job hooks and sinks.
struct Conn {
    outbound: Arc<Outbound>,
    /// Live jobs of this connection, by ticket.
    jobs: Mutex<HashMap<u64, pipeserve::JobHandle>>,
    /// Live jobs' trace buffers, by ticket: `(trace id, buffer)`. TRACE
    /// answers in-flight jobs from here; the terminal hook removes the
    /// entry (finished jobs answer from the slow-trace ring, if retained).
    traces: Mutex<HashMap<u64, (u64, Arc<obs::TraceBuffer>)>>,
}

/// A SUBMIT whose input is still streaming in. The content digest is
/// folded incrementally as chunks arrive, so submission never re-scans
/// the buffered input.
struct PendingJob {
    descriptor: &'static ByteJob,
    priority: Priority,
    throttle: u32,
    deadline_ms: u32,
    /// Client-supplied trace context (0 = server assigns at submission).
    trace_id: u64,
    /// Input segments exactly as they arrived off the wire — pooled
    /// [`Chunk`]s held without copying until submission coalesces them.
    input: Vec<Chunk>,
    input_bytes: usize,
    hasher: checksum::Sha256,
}

/// Flattens a streamed input into one contiguous [`Chunk`]. Zero or one
/// segments are free; more pay a single pooled copy (counted in the
/// process-wide [`checksum::buf::global_stats`] gauges).
fn coalesce_input(segments: Vec<Chunk>, total_bytes: usize, pool: &BufPool) -> Chunk {
    if segments.len() <= 1 {
        return segments.into_iter().next().unwrap_or_else(Chunk::empty);
    }
    let mut buf = pool.get(total_bytes);
    for segment in &segments {
        buf.extend_from_slice(segment);
    }
    checksum::buf::note_copy(total_bytes);
    buf.freeze()
}

fn wire_priority(priority: u8) -> Priority {
    match priority {
        PRIORITY_INTERACTIVE => Priority::Interactive,
        PRIORITY_BATCH => Priority::Batch,
        _ => Priority::Normal,
    }
}

fn terminal_frame(ticket: u64, result: &JobResult) -> Frame {
    let (status, message) = match result {
        JobResult::Completed(_) => (WireJobStatus::Completed, String::new()),
        JobResult::Cancelled(_) => (WireJobStatus::Cancelled, String::new()),
        JobResult::Panicked(msg) => (WireJobStatus::Failed, msg.clone()),
        JobResult::Expired => (WireJobStatus::Expired, String::new()),
    };
    Frame::JobDone {
        ticket,
        status,
        message,
    }
}

/// Handles one client connection: reads frames until EOF or a protocol
/// error, then cancels the connection's outstanding jobs and closes the
/// outbound queue.
fn serve_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let outbound = Arc::new(Outbound::new(shared.config.output_window));
    let writer_outbound = Arc::clone(&outbound);
    let writer = std::thread::Builder::new()
        .name("piped-conn-writer".to_string())
        .spawn(move || {
            // `write_frame` is a single vectored write straight from the
            // frame's scatter list (header, payload chunk, CRC) — no
            // assembly buffer, so the socket is written directly.
            let mut writer = write_half;
            while let Some(frame) = writer_outbound.pop() {
                if write_frame(&mut writer, &frame).is_err() {
                    writer_outbound.mark_dead();
                    return;
                }
            }
        })
        .expect("failed to spawn connection writer thread");

    let conn = Arc::new(Conn {
        outbound: Arc::clone(&outbound),
        jobs: Mutex::new(HashMap::new()),
        traces: Mutex::new(HashMap::new()),
    });
    let mut reader = BufReader::new(stream);
    let mut pending: HashMap<u64, PendingJob> = HashMap::new();
    // Tickets rejected before submission, whose residual input frames are
    // silently ignored (the client may still be streaming them).
    let mut dropped: HashSet<u64> = HashSet::new();

    loop {
        let frame = match read_frame_pooled(&mut reader, &shared.pool) {
            Ok(Some(frame)) => frame,
            Ok(None) => break,
            Err(e) => {
                outbound.push_control(Frame::Error {
                    code: ErrorCode::Protocol,
                    message: e.to_string(),
                });
                break;
            }
        };
        match frame {
            Frame::Submit {
                ticket,
                workload,
                priority,
                throttle,
                deadline_ms,
                trace_id,
            } => {
                if pending.contains_key(&ticket) || conn.jobs.lock().unwrap().contains_key(&ticket)
                {
                    // Ticket reuse is a protocol violation; ERROR frames
                    // are documented as connection-fatal, so hang up.
                    outbound.push_control(Frame::Error {
                        code: ErrorCode::Protocol,
                        message: format!("ticket {ticket} already in use"),
                    });
                    break;
                }
                // A rejected ticket may be legitimately reused once its
                // stream ended; forget any stale residual-frame marker.
                dropped.remove(&ticket);
                if pending.len() >= shared.config.max_pending_per_conn {
                    dropped.insert(ticket);
                    outbound.push_control(Frame::Rejected {
                        ticket,
                        code: ErrorCode::QueueFull,
                        message: format!(
                            "too many pending submissions on this connection (cap {})",
                            shared.config.max_pending_per_conn
                        ),
                    });
                    continue;
                }
                match workloads::bytes::lookup(&workload) {
                    Ok(descriptor) => {
                        pending.insert(
                            ticket,
                            PendingJob {
                                descriptor,
                                priority: wire_priority(priority),
                                throttle,
                                deadline_ms,
                                trace_id,
                                input: Vec::new(),
                                input_bytes: 0,
                                hasher: checksum::Sha256::new(),
                            },
                        );
                    }
                    Err(_) => {
                        dropped.insert(ticket);
                        outbound.push_control(Frame::Rejected {
                            ticket,
                            code: ErrorCode::UnknownWorkload,
                            message: format!("no workload named {workload:?}"),
                        });
                    }
                }
            }
            Frame::InputChunk { ticket, data } => {
                if !pending.contains_key(&ticket) {
                    if dropped.contains(&ticket) {
                        continue; // residual input of a rejected submit
                    }
                    outbound.push_control(Frame::Error {
                        code: ErrorCode::Protocol,
                        message: format!("input chunk for unknown ticket {ticket}"),
                    });
                    break;
                }
                let pending_total: usize = pending.values().map(|p| p.input_bytes).sum();
                let job = pending.get_mut(&ticket).expect("checked above");
                if job.input_bytes + data.len() > shared.config.max_input_bytes
                    || pending_total + data.len() > shared.config.max_input_bytes
                {
                    pending.remove(&ticket);
                    dropped.insert(ticket);
                    outbound.push_control(Frame::Rejected {
                        ticket,
                        code: ErrorCode::InputTooLarge,
                        message: format!(
                            "input exceeds the {} byte cap (per job and across a \
                             connection's pending submissions)",
                            shared.config.max_input_bytes
                        ),
                    });
                    continue;
                }
                job.hasher.update(&data);
                job.input_bytes += data.len();
                job.input.push(data);
            }
            Frame::InputEof { ticket } => {
                let Some(job) = pending.remove(&ticket) else {
                    if dropped.remove(&ticket) {
                        continue; // the rejected submit's stream is over
                    }
                    outbound.push_control(Frame::Error {
                        code: ErrorCode::Protocol,
                        message: format!("input EOF for unknown ticket {ticket}"),
                    });
                    break;
                };
                submit_job(&shared, &conn, ticket, job);
            }
            Frame::Status { ticket } => {
                let status = conn
                    .jobs
                    .lock()
                    .unwrap()
                    .get(&ticket)
                    .map(|handle| WireJobStatus::from(handle.try_status()))
                    .unwrap_or(WireJobStatus::Unknown);
                outbound.push_control(Frame::StatusReply { ticket, status });
            }
            Frame::Cancel { ticket } => {
                // Clone the handle out before cancelling: a still-queued
                // job is finalized synchronously on this thread, and its
                // terminal hook re-locks `conn.jobs` — holding the guard
                // across `cancel()` would self-deadlock.
                let handle = conn.jobs.lock().unwrap().get(&ticket).cloned();
                if let Some(handle) = handle {
                    handle.cancel();
                } else if pending.remove(&ticket).is_some() {
                    // Input still streaming: drop it; the job never ran.
                    dropped.insert(ticket);
                    outbound.push_control(Frame::JobDone {
                        ticket,
                        status: WireJobStatus::Cancelled,
                        message: String::new(),
                    });
                }
            }
            Frame::Metrics => {
                // A single-shard daemon keeps the flat object existing
                // clients parse; a sharded one nests it under "aggregate"
                // with the per-shard breakdown alongside.
                let json = if shared.service.inner().shards() > 1 {
                    let mut snapshot = shared.service.inner().sharded_metrics();
                    snapshot.aggregate = shared.service.metrics();
                    snapshot.to_json()
                } else {
                    shared.service.metrics().to_json()
                };
                outbound.push_control(Frame::MetricsReply { json });
            }
            Frame::Drain => {
                // Blocks this connection's reader until the executor is
                // idle; other connections keep reading (their SUBMITs are
                // rejected) and every job's output/JOB_DONE flows through
                // the writer threads.
                shared.begin_drain();
                outbound.push_control(Frame::DrainDone);
            }
            Frame::Trace { ticket } => {
                // Live jobs answer from their in-flight buffer (a partial
                // tree while running), finished jobs from the slow-trace
                // ring; an unknown or unretained ticket gets an empty span
                // list — the tracing analogue of STATUS_REPLY `unknown`.
                let live = conn
                    .traces
                    .lock()
                    .unwrap()
                    .get(&ticket)
                    .map(|(id, buffer)| (*id, Arc::clone(buffer)));
                let json = match live {
                    Some((trace_id, buffer)) => trace_json(trace_id, ticket, &buffer.dump()),
                    None => shared
                        .slow_trace_json(ticket)
                        .unwrap_or_else(|| trace_json(0, ticket, &[])),
                };
                outbound.push_control(Frame::TraceReply { ticket, json });
            }
            // Server→client frames arriving at the server are a protocol
            // violation; close the connection.
            Frame::Accepted { .. }
            | Frame::Rejected { .. }
            | Frame::OutputChunk { .. }
            | Frame::JobDone { .. }
            | Frame::StatusReply { .. }
            | Frame::MetricsReply { .. }
            | Frame::DrainDone
            | Frame::TraceReply { .. }
            | Frame::Error { .. } => {
                outbound.push_control(Frame::Error {
                    code: ErrorCode::Protocol,
                    message: "client sent a server-side frame".to_string(),
                });
                break;
            }
        }
    }

    // Teardown: a vanished client implies cancellation of its outstanding
    // jobs (nobody can consume their output), then flush and stop the
    // writer.
    let handles: Vec<pipeserve::JobHandle> = conn.jobs.lock().unwrap().values().cloned().collect();
    for handle in handles {
        handle.cancel();
    }
    outbound.close();
    let _ = writer.join();
}

/// Serves the Prometheus scrape endpoint: a hand-rolled HTTP/1.1 loop
/// answering every request with the full text-format exposition (see
/// [`crate::scrape`]). Scrapes are rare (seconds apart) and the body is
/// small, so connections are handled serially on this one thread.
fn serve_scrapes(listener: TcpListener, shared: Arc<Shared>) {
    use std::io::{Read, Write};
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                // Drain the request head (we answer every method/path the
                // same way); tolerate clients that close early.
                let mut head = [0u8; 1024];
                let _ = stream.read(&mut head);
                let body = scrape_body(&shared);
                let response = format!(
                    "HTTP/1.1 200 OK\r\n\
                     Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
                     Content-Length: {}\r\n\
                     Connection: close\r\n\r\n{body}",
                    body.len()
                );
                let _ = stream.write_all(response.as_bytes());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// The current scrape body: aggregate metrics (with cache counters), the
/// per-shard breakdown when sharded, the pools' stage timings, and the
/// endpoint's own self-metrics (scrape duration, start time, build info).
fn scrape_body(shared: &Shared) -> String {
    let render_started = std::time::Instant::now();
    let aggregate = shared.service.metrics();
    let stage_timing = shared.service.inner().stage_timing();
    let sharded = if shared.service.inner().shards() > 1 {
        let mut snapshot = shared.service.inner().sharded_metrics();
        snapshot.aggregate = aggregate.clone();
        Some(snapshot)
    } else {
        None
    };
    let mut body = crate::scrape::render_prometheus(&aggregate, sharded.as_ref(), &stage_timing);
    let start_time_seconds = shared
        .started_at
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0);
    body.push_str(&crate::scrape::render_self_metrics(
        render_started.elapsed().as_secs_f64(),
        start_time_seconds,
        shared.service.inner().shards(),
    ));
    body
}

/// Terminal-hook instrumentation: the `--slow-log-ms` structured stderr
/// line (carrying the job's trace id, so the line cross-references the
/// TRACE frame, the slow-trace ring and any `--trace-dir` dump), a
/// flight-recorder dump when a job panicked (the events that led up to
/// the crash, drained from every shard pool's rings), and tail-based
/// trace capture per [`ServerConfig::trace_slow_ms`]. Runs after the
/// job's root span was recorded, so `trace.dump()` sees the full tree.
fn note_terminal(
    shared: &Shared,
    ticket: u64,
    workload: &str,
    submitted: std::time::Instant,
    input_bytes: usize,
    trace: &obs::TraceBuffer,
    result: &JobResult,
) {
    let trace_id = trace.trace_id();
    if let JobResult::Panicked(message) = result {
        let events = shared.service.inner().flight_events();
        eprintln!(
            "piped: job ticket={ticket} workload={workload} trace={trace_id:016x} \
             panicked: {message}; flight recorder ({} events):",
            events.len()
        );
        for (shard, worker, e) in events {
            eprintln!(
                "piped:   [shard {shard} worker {worker}] +{}us {} arg={}",
                e.at_micros,
                e.kind.name(),
                e.arg
            );
        }
    }
    let service_ms = submitted.elapsed().as_secs_f64() * 1e3;
    if let Some(threshold_ms) = shared.config.slow_log_ms {
        if service_ms >= threshold_ms as f64 {
            let status = match result {
                JobResult::Completed(_) => "completed",
                JobResult::Cancelled(_) => "cancelled",
                JobResult::Panicked(_) => "panicked",
                JobResult::Expired => "expired",
            };
            let (first_node_ms, iterations) = match result.stats() {
                Some(stats) => (stats.time_to_first_node_ns as f64 / 1e6, stats.iterations),
                None => (0.0, 0),
            };
            eprintln!(
                "piped: slow-job ticket={ticket} workload={workload} status={status} \
                 service_ms={service_ms:.1} first_node_ms={first_node_ms:.3} \
                 iterations={iterations} input_bytes={input_bytes} trace={trace_id:016x}"
            );
        }
    }
    if let Some(threshold_ms) = shared.config.trace_slow_ms {
        if service_ms >= threshold_ms as f64 {
            shared.retain_slow_trace(ticket, trace_id, trace.dump());
        }
    }
}

/// Builds and submits one byte job; sends ACCEPTED or REJECTED. (The
/// input stream for the ticket ended with the EOF that triggered this
/// call, so a rejection here needs no residual-frame tracking.)
fn submit_job(shared: &Arc<Shared>, conn: &Arc<Conn>, ticket: u64, job: PendingJob) {
    let reject = |code: ErrorCode, message: String| {
        conn.outbound.push_control(Frame::Rejected {
            ticket,
            code,
            message,
        });
    };
    if shared.draining.load(Ordering::Acquire) {
        reject(
            ErrorCode::Draining,
            "server is draining; submit rejected".to_string(),
        );
        return;
    }

    // Every accepted job is traced: a client-propagated trace context (a
    // nonzero SUBMIT trace id, e.g. from a router fronting several
    // daemons) wins, else the server assigns one. The effective id is
    // echoed in ACCEPTED.
    let trace_id = if job.trace_id != 0 {
        job.trace_id
    } else {
        shared.next_trace_id()
    };
    let trace = Arc::new(obs::TraceBuffer::new(trace_id, 64));

    // The sink: the pipeline's final serial stage hands ownership of its
    // output chunk here; wire framing re-slices the same allocation (no
    // copy), back-pressured by the outbound data window.
    let sink_outbound = Arc::clone(&conn.outbound);
    let sink: ByteSink = Box::new(move |chunk: Chunk| {
        let mut off = 0;
        while off < chunk.len() {
            let end = (off + CHUNK_BYTES).min(chunk.len());
            sink_outbound.push_data(Frame::OutputChunk {
                ticket,
                data: chunk.slice(off..end),
            });
            off = end;
        }
    });
    let options = if job.throttle > 0 {
        piper::PipeOptions::with_throttle(job.throttle as usize)
    } else {
        piper::PipeOptions::default()
    };
    // Workload launch wants contiguous input. A single-segment stream
    // (the common case: inputs under one wire chunk) passes its pooled
    // buffer straight through; multi-segment streams pay exactly one
    // counted copy into a pooled buffer.
    let input: Chunk = coalesce_input(job.input, job.input_bytes, &shared.pool);
    let base = if shared.config.cache {
        // Keyed path: validate once at admission, then hand the cache
        // layer a key plus an infallible deferred launch — the factory may
        // run later (coalesced winner) or never (LRU hit), and the sink
        // alone decides where the bytes go.
        if let Err(e) = (job.descriptor.validate)(&input) {
            match e {
                ByteJobError::InvalidInput(msg) => reject(ErrorCode::InvalidInput, msg),
                ByteJobError::UnknownWorkload(name) => reject(ErrorCode::UnknownWorkload, name),
            }
            return;
        }
        let key = ContentKey::from_digest(job.descriptor.name, job.hasher.finalize());
        let descriptor = job.descriptor;
        let factory: SinkLaunchFn = Box::new(move |sink| {
            (descriptor.launch)(&input, sink).expect("input validated at admission")
        });
        JobSpec::keyed(options, key, sink, factory)
    } else {
        let launch = match (job.descriptor.launch)(&input, sink) {
            Ok(launch) => launch,
            Err(ByteJobError::InvalidInput(msg)) => {
                reject(ErrorCode::InvalidInput, msg);
                return;
            }
            Err(ByteJobError::UnknownWorkload(name)) => {
                reject(ErrorCode::UnknownWorkload, name);
                return;
            }
        };
        JobSpec::from_launch(options, launch)
    };
    let hook_conn = Arc::clone(conn);
    // Weak: the hook lives inside the executor's job table, and a strong
    // Shared reference there would cycle through the service back to the
    // hook until finalization.
    let hook_shared = Arc::downgrade(shared);
    let submitted = std::time::Instant::now();
    let workload_name = job.descriptor.name;
    let input_bytes = job.input_bytes;
    let hook_trace = Arc::clone(&trace);
    let mut spec = base
        .named(job.descriptor.name)
        .priority(job.priority)
        .traced(Arc::clone(&trace))
        .on_terminal(move |result| {
            if let Some(shared) = hook_shared.upgrade() {
                // The executor records the root span before this hook
                // runs, so the dump taken here (and any tail capture)
                // carries the complete tree.
                note_terminal(
                    &shared,
                    ticket,
                    workload_name,
                    submitted,
                    input_bytes,
                    &hook_trace,
                    result,
                );
            }
            // Runs after the pipeline drained, i.e. after the final output
            // chunk was queued: JOB_DONE is ordered behind all output.
            hook_conn
                .outbound
                .push_control(terminal_frame(ticket, result));
            hook_conn.jobs.lock().unwrap().remove(&ticket);
            hook_conn.traces.lock().unwrap().remove(&ticket);
        });
    if job.deadline_ms > 0 {
        spec = spec.queue_deadline(Duration::from_millis(job.deadline_ms as u64));
    }

    // Registered before submission so the hook's remove (which may fire
    // during `submit` for a job that finishes immediately) always sees
    // the entry.
    conn.traces
        .lock()
        .unwrap()
        .insert(ticket, (trace_id, Arc::clone(&trace)));
    match shared.service.submit(spec) {
        Ok(handle) => {
            let job_id = handle.id().0;
            let already_done = handle.try_result().is_some();
            if !already_done {
                let mut jobs = conn.jobs.lock().unwrap();
                // The terminal hook may have fired between the submit and
                // this insert; re-check under the lock paired with the
                // hook's remove so no stale handle is left behind.
                if handle.try_result().is_none() {
                    jobs.insert(ticket, handle);
                }
            }
            conn.outbound.push_control(Frame::Accepted {
                ticket,
                job_id,
                trace_id,
            });
        }
        Err(e) => {
            conn.traces.lock().unwrap().remove(&ticket);
            reject((&e).into(), e.to_string());
        }
    }
}
