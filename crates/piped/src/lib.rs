//! **piped** — a network serving daemon that streams pipeline jobs over
//! TCP onto the shared `pipeserve` pool.
//!
//! The stack so far runs the paper's on-the-fly pipelines for code linked
//! into the same process: `piper` executes one pipeline, `pipeserve`
//! multiplexes many onto one pool. This crate adds the missing layer of a
//! servable system — a transport that admits work from *outside* the
//! process, in the mould of production engines that pair a long-running
//! pipeline executor with a network front end:
//!
//! * [`proto`] — a length-prefixed binary wire protocol with a per-frame
//!   CRC-32 ([`checksum::crc32`]): SUBMIT + streamed input chunks in,
//!   streamed OUTPUT chunks + JOB_DONE back, STATUS / CANCEL / METRICS /
//!   DRAIN control frames.
//! * [`server`] — [`PipedServer`]: a TCP daemon multiplexing any number of
//!   connections onto one `pipeserve::ShardedService` (one shard by
//!   default; `--shards N` splits the executor into N elastic shards with
//!   power-of-two-choices placement and a per-shard METRICS breakdown).
//!   Each SUBMIT names a
//!   workload from the `workloads::bytes` registry; the workload
//!   pipeline's final serial stage streams encoded output straight into
//!   the connection's bounded outbound queue (backpressure reaches the
//!   pipeline as ordinary serial-stage blocking), and a graceful DRAIN
//!   completes admitted jobs while rejecting new ones.
//! * [`client`] — [`PipedClient`]: a blocking multiplexing client (one
//!   demux thread per connection, any number of concurrent
//!   [`RemoteJob`]s).
//!
//! The `piped` binary wraps [`PipedServer`] as a daemon for CI and
//! command-line use; `piped_load` (in `crates/bench`) drives a server
//! over loopback and verifies every response byte-for-byte against the
//! workloads' serial references. See `crates/piped/DESIGN.md` for the
//! frame table and the backpressure/drain semantics.

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod scrape;
pub mod server;

pub use client::{ClientError, PipedClient, RemoteJob, RemoteOutcome, SubmitOptions};
pub use proto::{ErrorCode, Frame, WireError, WireJobStatus};
pub use server::{PipedServer, ServerConfig, ServerHandle};
