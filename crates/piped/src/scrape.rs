//! Prometheus text-format exposition for the daemon's metrics.
//!
//! [`render_prometheus`] turns the executor's
//! [`pipeserve::ServiceMetricsSnapshot`] (plus the optional per-shard
//! breakdown and pool stage timings) into the classic text format
//! (version 0.0.4): `# HELP` / `# TYPE` headers, counters and gauges as
//! single samples, and each latency histogram as the
//! `_bucket{le=…}` / `_sum` / `_count` triplet. The daemon serves it from
//! the hand-rolled HTTP listener behind `--metrics-addr` — one GET, one
//! `200 text/plain`, no HTTP library.

use pipeserve::{ServiceMetricsSnapshot, ShardedMetricsSnapshot};

/// Escapes a label value per the Prometheus text format (backslash, quote
/// and newline).
fn label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats nanoseconds as seconds, the base unit Prometheus conventions
/// expect for time series.
fn seconds(ns: u64) -> String {
    format!("{}", ns as f64 / 1e9)
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
    ));
}

fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
    ));
}

fn gauge_f64(out: &mut String, name: &str, help: &str, value: f64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
    ));
}

/// Renders the scrape endpoint's self-metrics, appended to every
/// exposition: how long this scrape's render took, when the daemon
/// started (UNIX seconds), and a `piped_build_info` info-style gauge
/// carrying the crate version and shard count as labels.
pub fn render_self_metrics(scrape_seconds: f64, start_time_seconds: f64, shards: usize) -> String {
    let mut out = String::with_capacity(512);
    gauge_f64(
        &mut out,
        "piped_scrape_duration_seconds",
        "Time spent rendering this scrape body.",
        scrape_seconds,
    );
    gauge_f64(
        &mut out,
        "piped_start_time_seconds",
        "Daemon start time, seconds since the UNIX epoch.",
        start_time_seconds,
    );
    // Info-style gauge: the value is always 1, the payload is the labels.
    // Label values must stay whitespace-free to keep every sample line at
    // exactly two tokens (asserted by the render tests).
    out.push_str(&format!(
        concat!(
            "# HELP piped_build_info Daemon build and topology info.\n",
            "# TYPE piped_build_info gauge\n",
            "piped_build_info{{version=\"{}\",shards=\"{}\"}} 1\n"
        ),
        label_escape(env!("CARGO_PKG_VERSION")),
        shards
    ));
    out
}

/// Appends one histogram as `_bucket`/`_sum`/`_count` samples under an
/// already-emitted `# TYPE <name> histogram` header. `labels` is the
/// rendered label set *without* `le` (e.g. `workload="dedup",kind="run"`).
fn histogram_series(out: &mut String, name: &str, labels: &str, h: &obs::HistogramSnapshot) {
    for (upper, cumulative) in h.cumulative_buckets() {
        out.push_str(&format!(
            "{name}_bucket{{{labels},le=\"{}\"}} {cumulative}\n",
            seconds(upper)
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{{{labels},le=\"+Inf\"}} {}\n",
        h.count()
    ));
    out.push_str(&format!("{name}_sum{{{labels}}} {}\n", seconds(h.sum())));
    out.push_str(&format!("{name}_count{{{labels}}} {}\n", h.count()));
}

/// Renders the full scrape body. `sharded` adds per-shard gauges when the
/// daemon runs more than one shard; `stage_timing` adds the pool-level
/// per-stage node-timing histograms (indexed by stage slot).
pub fn render_prometheus(
    snapshot: &ServiceMetricsSnapshot,
    sharded: Option<&ShardedMetricsSnapshot>,
    stage_timing: &[obs::HistogramSnapshot],
) -> String {
    let mut out = String::with_capacity(4096);

    counter(
        &mut out,
        "piped_jobs_submitted_total",
        "Jobs accepted into the submission queue.",
        snapshot.jobs_submitted,
    );
    counter(
        &mut out,
        "piped_jobs_admitted_total",
        "Jobs admitted by the controller and launched on the pool.",
        snapshot.jobs_admitted,
    );
    counter(
        &mut out,
        "piped_jobs_rejected_total",
        "Submissions rejected by backpressure or budget.",
        snapshot.jobs_rejected,
    );
    counter(
        &mut out,
        "piped_jobs_completed_total",
        "Jobs that ran every iteration.",
        snapshot.jobs_completed,
    );
    counter(
        &mut out,
        "piped_jobs_cancelled_total",
        "Jobs cancelled (queued or mid-run).",
        snapshot.jobs_cancelled,
    );
    counter(
        &mut out,
        "piped_jobs_panicked_total",
        "Jobs whose producer or a node panicked.",
        snapshot.jobs_panicked,
    );
    counter(
        &mut out,
        "piped_jobs_expired_total",
        "Jobs expired in the queue past their deadline.",
        snapshot.jobs_expired,
    );
    counter(
        &mut out,
        "piped_cache_hits_total",
        "Keyed submissions answered from the result cache.",
        snapshot.cache_hits,
    );
    counter(
        &mut out,
        "piped_cache_misses_total",
        "Keyed submissions that missed the cache and ran a pipeline.",
        snapshot.cache_misses,
    );
    counter(
        &mut out,
        "piped_coalesced_total",
        "Keyed submissions coalesced onto an identical in-flight pipeline.",
        snapshot.coalesced,
    );
    gauge(
        &mut out,
        "piped_queue_depth",
        "Current submission-queue depth.",
        snapshot.queue_depth,
    );
    gauge(
        &mut out,
        "piped_running_jobs",
        "Jobs currently executing on the pool.",
        snapshot.running,
    );
    gauge(
        &mut out,
        "piped_frames_in_use",
        "Iteration frames currently reserved.",
        snapshot.frames_in_use,
    );
    gauge(
        &mut out,
        "piped_frame_budget",
        "The configured global frame budget.",
        snapshot.frame_budget,
    );
    gauge(
        &mut out,
        "piped_peak_queue_depth",
        "High-water mark of the submission-queue depth.",
        snapshot.peak_queue_depth,
    );
    gauge(
        &mut out,
        "piped_peak_frames_in_use",
        "High-water mark of reserved iteration frames.",
        snapshot.peak_frames_in_use,
    );

    if !snapshot.latency.is_empty() {
        out.push_str(concat!(
            "# HELP piped_latency_seconds Per-workload job latency ",
            "(kind: queue_wait, first_node, run, service).\n",
            "# TYPE piped_latency_seconds histogram\n"
        ));
        for w in &snapshot.latency {
            let workload = label_escape(&w.workload);
            for (kind, h) in [
                ("queue_wait", &w.queue_wait),
                ("first_node", &w.first_node),
                ("run", &w.run),
                ("service", &w.service),
            ] {
                let labels = format!("workload=\"{workload}\",kind=\"{kind}\"");
                histogram_series(&mut out, "piped_latency_seconds", &labels, h);
            }
        }
    }

    if stage_timing.iter().any(|h| h.count() > 0) {
        out.push_str(concat!(
            "# HELP piped_stage_seconds Sampled per-stage pipeline node ",
            "run time (the last slot aggregates deeper stages).\n",
            "# TYPE piped_stage_seconds histogram\n"
        ));
        for (slot, h) in stage_timing.iter().enumerate() {
            if h.count() == 0 {
                continue;
            }
            let labels = format!("stage=\"{slot}\"");
            histogram_series(&mut out, "piped_stage_seconds", &labels, h);
        }
    }

    if let Some(sharded) = sharded {
        gauge(
            &mut out,
            "piped_max_peak_queue_depth",
            "True maximum of per-shard peak queue depths.",
            sharded.max_peak_queue_depth,
        );
        gauge(
            &mut out,
            "piped_max_peak_frames_in_use",
            "True maximum of per-shard peak frame reservations.",
            sharded.max_peak_frames_in_use,
        );
        out.push_str(concat!(
            "# HELP piped_shard_queue_depth Per-shard submission-queue depth.\n",
            "# TYPE piped_shard_queue_depth gauge\n"
        ));
        for (i, shard) in sharded.shards.iter().enumerate() {
            out.push_str(&format!(
                "piped_shard_queue_depth{{shard=\"{i}\"}} {}\n",
                shard.queue_depth
            ));
        }
        out.push_str(concat!(
            "# HELP piped_shard_queue_wait_p99_seconds Per-shard all-workload ",
            "99th-percentile queue wait.\n",
            "# TYPE piped_shard_queue_wait_p99_seconds gauge\n"
        ));
        for (i, shard) in sharded.shards.iter().enumerate() {
            out.push_str(&format!(
                "piped_shard_queue_wait_p99_seconds{{shard=\"{i}\"}} {}\n",
                seconds(shard.queue_wait_p99_ns())
            ));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_and_histograms() {
        let mut snapshot = ServiceMetricsSnapshot::default();
        snapshot.jobs_submitted = 3;
        snapshot.jobs_completed = 2;
        let body = render_prometheus(&snapshot, None, &[]);
        assert!(body.contains("# TYPE piped_jobs_submitted_total counter"));
        assert!(body.contains("piped_jobs_submitted_total 3"));
        assert!(body.contains("piped_jobs_completed_total 2"));
        // No latency recorded: the histogram family is omitted entirely.
        assert!(!body.contains("piped_latency_seconds"));
        // Every line is a comment or a sample.
        for line in body.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_with_inf() {
        let h = obs::Histogram::new();
        for ns in [1_000_000u64, 2_000_000, 4_000_000, 1_000_000_000] {
            h.record(ns);
        }
        let w = pipeserve::WorkloadLatency {
            workload: "dedup".to_string(),
            service: h.snapshot(),
            ..Default::default()
        };
        let mut snapshot = ServiceMetricsSnapshot::default();
        snapshot.latency = vec![w];
        let body = render_prometheus(&snapshot, None, &[]);
        assert!(body.contains("# TYPE piped_latency_seconds histogram"));
        assert!(body.contains(
            "piped_latency_seconds_bucket{workload=\"dedup\",kind=\"service\",le=\"+Inf\"} 4"
        ));
        assert!(body.contains("piped_latency_seconds_count{workload=\"dedup\",kind=\"service\"} 4"));
        // Bucket counts are monotone non-decreasing in le order.
        let counts: Vec<u64> = body
            .lines()
            .filter(|l| {
                l.starts_with("piped_latency_seconds_bucket{workload=\"dedup\",kind=\"service\"")
            })
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(label_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn self_metrics_are_well_formed() {
        let body = render_self_metrics(0.000123, 1_700_000_000.5, 4);
        assert!(body.contains("piped_scrape_duration_seconds 0.000123"));
        assert!(body.contains("piped_start_time_seconds 1700000000.5"));
        assert!(body.contains("piped_build_info{version=\""));
        assert!(body.contains(",shards=\"4\"} 1"));
        // Same invariant the main render tests assert: every line is a
        // comment or exactly two whitespace-separated tokens.
        for line in body.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed line: {line}"
            );
        }
    }
}
