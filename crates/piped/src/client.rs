//! The client library: a blocking, multiplexing connection to a
//! [`crate::PipedServer`].
//!
//! One [`PipedClient`] owns one TCP connection and a demultiplexer thread
//! that routes incoming frames to per-ticket job entries, so any number of
//! jobs (from any number of threads) can be in flight concurrently on the
//! same socket. Submission is blocking-but-bounded: [`PipedClient::submit`]
//! streams the input and waits for the server's ACCEPTED/REJECTED verdict;
//! the returned [`RemoteJob`] then collects the streamed output and the
//! terminal JOB_DONE.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use checksum::buf::Chunk;
use pipeserve::Priority;

use crate::proto::{
    read_frame, write_frame, ErrorCode, Frame, WireJobStatus, CHUNK_BYTES, PRIORITY_BATCH,
    PRIORITY_INTERACTIVE, PRIORITY_NORMAL,
};

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The connection failed or was closed mid-conversation.
    Connection(String),
    /// The server refused the request.
    Rejected {
        /// The wire error code.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connection(msg) => write!(f, "connection error: {msg}"),
            ClientError::Rejected { code, message } => {
                write!(f, "rejected ({code}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Scheduling parameters of a submission.
#[derive(Debug, Clone)]
pub struct SubmitOptions {
    /// Registry name of the workload (e.g. `"dedup"`).
    pub workload: String,
    /// Scheduling class (default [`Priority::Normal`]).
    pub priority: Priority,
    /// Throttle window `K` (0 = server default `4P`).
    pub throttle: u32,
    /// Queue deadline in milliseconds (0 = none).
    pub deadline_ms: u32,
    /// Trace context to propagate (0 = let the server assign one). The
    /// effective id comes back via [`RemoteJob::trace_id`] either way.
    pub trace_id: u64,
}

impl SubmitOptions {
    /// Options for `workload` with all defaults.
    pub fn new(workload: impl Into<String>) -> SubmitOptions {
        SubmitOptions {
            workload: workload.into(),
            priority: Priority::Normal,
            throttle: 0,
            deadline_ms: 0,
            trace_id: 0,
        }
    }

    /// Sets the scheduling class.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the throttle window `K`.
    pub fn throttle(mut self, k: u32) -> Self {
        self.throttle = k;
        self
    }

    /// Sets the queue deadline.
    pub fn deadline_ms(mut self, ms: u32) -> Self {
        self.deadline_ms = ms;
        self
    }

    /// Propagates an upstream trace id (e.g. from a router fronting
    /// several daemons) instead of letting the server assign one.
    pub fn trace_id(mut self, id: u64) -> Self {
        self.trace_id = id;
        self
    }
}

/// Terminal outcome of a remote job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteOutcome {
    /// The terminal state (completed / cancelled / failed / expired).
    pub status: WireJobStatus,
    /// The complete output stream (valid only for
    /// [`WireJobStatus::Completed`]).
    pub output: Vec<u8>,
    /// Panic text for failed jobs, else empty.
    pub message: String,
    /// Submit-to-JOB_DONE latency, measured at this client (includes both
    /// network directions).
    pub latency: Duration,
}

/// Per-ticket progress, filled in by the demultiplexer.
#[derive(Default)]
struct EntryState {
    /// `Ok((job_id, trace_id))` or the rejection.
    accepted: Option<Result<(u64, u64), (ErrorCode, String)>>,
    output: Vec<u8>,
    done: Option<(WireJobStatus, String, Instant)>,
    status_reply: Option<WireJobStatus>,
    conn_error: Option<String>,
}

struct JobEntry {
    state: Mutex<EntryState>,
    cv: Condvar,
    submitted_at: Instant,
}

/// State shared between the client API and the demultiplexer thread.
struct ClientShared {
    entries: Mutex<HashMap<u64, Arc<JobEntry>>>,
    metrics: Mutex<Vec<String>>,
    metrics_cv: Condvar,
    /// TRACE_REPLY bodies by ticket. Keyed (unlike `metrics`) because
    /// trace answers stay useful after the job entry is gone — a TRACE
    /// for a finished job answers from the server's slow-trace ring.
    traces: Mutex<HashMap<u64, String>>,
    trace_cv: Condvar,
    drained: Mutex<bool>,
    drain_cv: Condvar,
    conn_error: Mutex<Option<String>>,
}

impl ClientShared {
    /// Records a connection failure and wakes every waiter.
    fn fail(&self, message: String) {
        *self.conn_error.lock().unwrap() = Some(message.clone());
        for entry in self.entries.lock().unwrap().values() {
            let mut state = entry.state.lock().unwrap();
            state.conn_error = Some(message.clone());
            entry.cv.notify_all();
        }
        self.metrics_cv.notify_all();
        self.trace_cv.notify_all();
        self.drain_cv.notify_all();
    }

    fn entry(&self, ticket: u64) -> Option<Arc<JobEntry>> {
        self.entries.lock().unwrap().get(&ticket).cloned()
    }
}

/// A blocking, multiplexing client connection; see the
/// [module docs](self).
///
/// Dropping the client shuts the socket down in both directions, so the
/// server observes the disconnect promptly (and cancels any jobs still
/// outstanding on this connection) and the demultiplexer thread exits.
pub struct PipedClient {
    writer: Mutex<BufWriter<TcpStream>>,
    shared: Arc<ClientShared>,
    next_ticket: AtomicU64,
    /// Serialises METRICS and DRAIN request/response pairs.
    control_call: Mutex<()>,
    /// A handle on the shared socket, kept solely so Drop can shut it
    /// down (the writer/demux fds are dups of the same socket).
    socket: TcpStream,
}

impl Drop for PipedClient {
    fn drop(&mut self) {
        // Without this, the demux thread's dup of the socket keeps the
        // connection established forever: the server would never see EOF
        // and never run its orphan-cancelling teardown.
        let _ = self.socket.shutdown(std::net::Shutdown::Both);
    }
}

impl PipedClient {
    /// Connects and spawns the demultiplexer thread.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<PipedClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone()?;
        let socket = stream.try_clone()?;
        let shared = Arc::new(ClientShared {
            entries: Mutex::new(HashMap::new()),
            metrics: Mutex::new(Vec::new()),
            metrics_cv: Condvar::new(),
            traces: Mutex::new(HashMap::new()),
            trace_cv: Condvar::new(),
            drained: Mutex::new(false),
            drain_cv: Condvar::new(),
            conn_error: Mutex::new(None),
        });
        let demux_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("piped-client-demux".to_string())
            .spawn(move || demux_loop(read_half, demux_shared))
            .expect("failed to spawn client demux thread");
        Ok(PipedClient {
            writer: Mutex::new(BufWriter::new(stream)),
            shared,
            next_ticket: AtomicU64::new(1),
            control_call: Mutex::new(()),
            socket,
        })
    }

    fn send(&self, frames: &[Frame]) -> Result<(), ClientError> {
        let mut writer = self.writer.lock().unwrap();
        for frame in frames {
            write_frame(&mut *writer, frame).map_err(|e| ClientError::Connection(e.to_string()))?;
        }
        writer
            .flush()
            .map_err(|e| ClientError::Connection(e.to_string()))
    }

    /// Submits a job: streams `input`, waits for the server's verdict, and
    /// returns a handle on the accepted job.
    ///
    /// Borrowed input pays exactly one counted copy into a [`Chunk`]; use
    /// [`PipedClient::submit_chunk`] when the caller already owns one to
    /// stream fully zero-copy.
    pub fn submit(&self, options: &SubmitOptions, input: &[u8]) -> Result<RemoteJob, ClientError> {
        self.submit_chunk(options, Chunk::copy_from_slice(input))
    }

    /// Zero-copy submission: every wire frame's payload is a view of
    /// `input`, so nothing is copied between the caller and the socket.
    pub fn submit_chunk(
        &self,
        options: &SubmitOptions,
        input: Chunk,
    ) -> Result<RemoteJob, ClientError> {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(JobEntry {
            state: Mutex::new(EntryState::default()),
            cv: Condvar::new(),
            submitted_at: Instant::now(),
        });
        self.shared
            .entries
            .lock()
            .unwrap()
            .insert(ticket, Arc::clone(&entry));

        let priority = match options.priority {
            Priority::Interactive => PRIORITY_INTERACTIVE,
            Priority::Normal => PRIORITY_NORMAL,
            Priority::Batch => PRIORITY_BATCH,
        };
        let mut frames = vec![Frame::Submit {
            ticket,
            workload: options.workload.clone(),
            priority,
            throttle: options.throttle,
            deadline_ms: options.deadline_ms,
            trace_id: options.trace_id,
        }];
        let mut off = 0;
        while off < input.len() {
            let end = (off + CHUNK_BYTES).min(input.len());
            frames.push(Frame::InputChunk {
                ticket,
                data: input.slice(off..end),
            });
            off = end;
        }
        frames.push(Frame::InputEof { ticket });
        if let Err(e) = self.send(&frames) {
            self.shared.entries.lock().unwrap().remove(&ticket);
            return Err(e);
        }

        // Wait for the verdict.
        let verdict = {
            let mut state = entry.state.lock().unwrap();
            loop {
                if let Some(verdict) = state.accepted.clone() {
                    break verdict;
                }
                if let Some(msg) = &state.conn_error {
                    let msg = msg.clone();
                    drop(state);
                    self.shared.entries.lock().unwrap().remove(&ticket);
                    return Err(ClientError::Connection(msg));
                }
                state = entry.cv.wait(state).unwrap();
            }
        };
        match verdict {
            Ok((job_id, trace_id)) => Ok(RemoteJob {
                shared: Arc::clone(&self.shared),
                entry,
                ticket,
                job_id,
                trace_id,
            }),
            Err((code, message)) => {
                self.shared.entries.lock().unwrap().remove(&ticket);
                Err(ClientError::Rejected { code, message })
            }
        }
    }

    /// Fetches the server's aggregate executor metrics as JSON.
    pub fn metrics_json(&self) -> Result<String, ClientError> {
        let _serialize = self.control_call.lock().unwrap();
        self.send(&[Frame::Metrics])?;
        let mut metrics = self.shared.metrics.lock().unwrap();
        loop {
            if let Some(json) = metrics.pop() {
                return Ok(json);
            }
            if let Some(msg) = self.shared.conn_error.lock().unwrap().clone() {
                return Err(ClientError::Connection(msg));
            }
            metrics = self.shared.metrics_cv.wait(metrics).unwrap();
        }
    }

    /// Asks the server to drain and blocks until it reports DRAIN_DONE
    /// (every admitted job finished; new submissions rejected server-wide).
    pub fn drain(&self) -> Result<(), ClientError> {
        let _serialize = self.control_call.lock().unwrap();
        self.send(&[Frame::Drain])?;
        let mut drained = self.shared.drained.lock().unwrap();
        loop {
            if *drained {
                return Ok(());
            }
            if let Some(msg) = self.shared.conn_error.lock().unwrap().clone() {
                return Err(ClientError::Connection(msg));
            }
            drained = self.shared.drain_cv.wait(drained).unwrap();
        }
    }

    /// Round-trips a TRACE frame: the span tree the server recorded for
    /// `ticket`, as the single-line JSON described on
    /// [`Frame::TraceReply`]. Works while the job is live (a partial
    /// tree) and after it finished, if the job was slow enough for the
    /// server's tail-based capture; an unknown or unretained ticket
    /// yields an empty `"spans"` list.
    pub fn trace_json(&self, ticket: u64) -> Result<String, ClientError> {
        self.send(&[Frame::Trace { ticket }])?;
        let mut traces = self.shared.traces.lock().unwrap();
        loop {
            if let Some(json) = traces.remove(&ticket) {
                return Ok(json);
            }
            if let Some(msg) = self.shared.conn_error.lock().unwrap().clone() {
                return Err(ClientError::Connection(msg));
            }
            traces = self.shared.trace_cv.wait(traces).unwrap();
        }
    }

    /// Sends a cancel for `ticket` (used by [`RemoteJob::cancel`]).
    fn send_cancel(&self, ticket: u64) -> Result<(), ClientError> {
        self.send(&[Frame::Cancel { ticket }])
    }

    /// Sends a status probe for `ticket` (used by [`RemoteJob::status`]).
    fn send_status(&self, ticket: u64) -> Result<(), ClientError> {
        self.send(&[Frame::Status { ticket }])
    }
}

/// A handle on one accepted remote job.
pub struct RemoteJob {
    shared: Arc<ClientShared>,
    entry: Arc<JobEntry>,
    ticket: u64,
    job_id: u64,
    trace_id: u64,
}

impl std::fmt::Debug for RemoteJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteJob")
            .field("ticket", &self.ticket)
            .field("job_id", &self.job_id)
            .finish()
    }
}

impl RemoteJob {
    /// The client-side correlation id.
    pub fn ticket(&self) -> u64 {
        self.ticket
    }

    /// The server-side executor job id (diagnostics).
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// The job's effective trace id (from ACCEPTED: the propagated
    /// SUBMIT value, or the server-assigned one; never 0). The same id
    /// appears in the server's slow log and `trace-<id>.json` dumps.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Round-trips a TRACE frame for this job — see
    /// [`PipedClient::trace_json`].
    pub fn trace(&self, client: &PipedClient) -> Result<String, ClientError> {
        client.trace_json(self.ticket)
    }

    /// Blocks until JOB_DONE and returns the terminal outcome with the
    /// complete output stream. Idempotent: a repeated `wait` returns the
    /// same outcome (the output is kept, not drained).
    pub fn wait(&self) -> Result<RemoteOutcome, ClientError> {
        let outcome = {
            let mut state = self.entry.state.lock().unwrap();
            loop {
                if let Some((status, message, at)) = state.done.clone() {
                    break RemoteOutcome {
                        status,
                        output: state.output.clone(),
                        message,
                        latency: at.duration_since(self.entry.submitted_at),
                    };
                }
                if let Some(msg) = &state.conn_error {
                    return Err(ClientError::Connection(msg.clone()));
                }
                state = self.entry.cv.wait(state).unwrap();
            }
        };
        self.shared.entries.lock().unwrap().remove(&self.ticket);
        Ok(outcome)
    }

    /// Requests cooperative cancellation (JOB_DONE still follows, normally
    /// with the `Cancelled` status — or `Completed` if the race was lost).
    pub fn cancel(&self, client: &PipedClient) -> Result<(), ClientError> {
        client.send_cancel(self.ticket)
    }

    /// Round-trips a STATUS probe.
    pub fn status(&self, client: &PipedClient) -> Result<WireJobStatus, ClientError> {
        {
            let mut state = self.entry.state.lock().unwrap();
            state.status_reply = None;
        }
        client.send_status(self.ticket)?;
        let mut state = self.entry.state.lock().unwrap();
        loop {
            if let Some(status) = state.status_reply {
                return Ok(status);
            }
            // A terminal frame also answers the question.
            if let Some((status, _, _)) = &state.done {
                return Ok(*status);
            }
            if let Some(msg) = &state.conn_error {
                return Err(ClientError::Connection(msg.clone()));
            }
            state = self.entry.cv.wait(state).unwrap();
        }
    }
}

/// Routes incoming frames to their per-ticket entries.
fn demux_loop(stream: TcpStream, shared: Arc<ClientShared>) {
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader) {
            Ok(Some(frame)) => match frame {
                Frame::Accepted {
                    ticket,
                    job_id,
                    trace_id,
                } => {
                    if let Some(entry) = shared.entry(ticket) {
                        let mut state = entry.state.lock().unwrap();
                        state.accepted = Some(Ok((job_id, trace_id)));
                        entry.cv.notify_all();
                    }
                }
                Frame::Rejected {
                    ticket,
                    code,
                    message,
                } => {
                    if let Some(entry) = shared.entry(ticket) {
                        let mut state = entry.state.lock().unwrap();
                        state.accepted = Some(Err((code, message)));
                        entry.cv.notify_all();
                    }
                }
                Frame::OutputChunk { ticket, data } => {
                    if let Some(entry) = shared.entry(ticket) {
                        entry.state.lock().unwrap().output.extend_from_slice(&data);
                    }
                }
                Frame::JobDone {
                    ticket,
                    status,
                    message,
                } => {
                    if let Some(entry) = shared.entry(ticket) {
                        let mut state = entry.state.lock().unwrap();
                        state.done = Some((status, message, Instant::now()));
                        entry.cv.notify_all();
                    }
                }
                Frame::StatusReply { ticket, status } => {
                    if let Some(entry) = shared.entry(ticket) {
                        let mut state = entry.state.lock().unwrap();
                        state.status_reply = Some(status);
                        entry.cv.notify_all();
                    }
                }
                Frame::MetricsReply { json } => {
                    shared.metrics.lock().unwrap().push(json);
                    shared.metrics_cv.notify_all();
                }
                Frame::TraceReply { ticket, json } => {
                    shared.traces.lock().unwrap().insert(ticket, json);
                    shared.trace_cv.notify_all();
                }
                Frame::DrainDone => {
                    *shared.drained.lock().unwrap() = true;
                    shared.drain_cv.notify_all();
                }
                Frame::Error { code, message } => {
                    // Connection-level protocol error: the server will hang
                    // up; surface the reason to every waiter.
                    shared.fail(format!("server error ({code}): {message}"));
                    return;
                }
                // Client→server frames arriving at the client mean the
                // peer is not a piped server.
                Frame::Submit { .. }
                | Frame::InputChunk { .. }
                | Frame::InputEof { .. }
                | Frame::Status { .. }
                | Frame::Cancel { .. }
                | Frame::Metrics
                | Frame::Drain
                | Frame::Trace { .. } => {
                    shared.fail("peer sent a client-side frame".to_string());
                    return;
                }
            },
            Ok(None) => {
                shared.fail("connection closed by server".to_string());
                return;
            }
            Err(e) => {
                shared.fail(e.to_string());
                return;
            }
        }
    }
}
