//! The `piped` daemon: serve pipeline jobs over TCP.
//!
//! ```sh
//! piped --listen 127.0.0.1:7070 --workers 8 --max-queue 256
//! piped --listen 127.0.0.1:0 --addr-file piped.addr --exit-on-drain
//! ```
//!
//! Flags:
//!
//! * `--listen ADDR` — bind address (default `127.0.0.1:0`, an ephemeral
//!   port; the bound address is printed and optionally written to
//!   `--addr-file`).
//! * `--workers N` — total executor pool workers across shards (default:
//!   machine parallelism). Rounded up to a multiple of `--shards` (each
//!   shard gets `ceil(N / shards)` worker slots).
//! * `--shards N` — executor shards (default 1). With N > 1 the daemon
//!   runs a sharded elastic executor: power-of-two-choices placement,
//!   per-shard frame budgets and queues, pools breathing in a `[1,
//!   workers/N]` band, and a METRICS frame with the per-shard breakdown.
//! * `--frame-budget N` — total `Σ K_j` cap, split over the shards
//!   (default: executor default).
//! * `--max-queue N` — bounded submission-queue depth (default 256).
//! * `--max-input-mb N` — per-job input cap in MiB (default 16).
//! * `--output-window N` — per-connection queued OUTPUT-frame cap
//!   (default 64).
//! * `--cache-mb N` — byte budget of the content-addressed result cache
//!   in MiB (default: derived from the frame budget).
//! * `--no-cache` — disable result caching and request coalescing; every
//!   submission runs its own pipeline.
//! * `--addr-file PATH` — write the bound address to PATH once listening
//!   (how CI discovers the ephemeral port).
//! * `--exit-on-drain` — exit after a DRAIN completes (the
//!   SIGTERM-equivalent shutdown: a client sends DRAIN, admitted jobs
//!   finish, the process leaves).
//! * `--metrics-addr ADDR` — serve the executor's metrics in Prometheus
//!   text format over HTTP on ADDR (counters, gauges, and per-workload
//!   latency histograms). Off by default.
//! * `--slow-log-ms N` — log every job whose end-to-end service time
//!   exceeds N ms as one structured stderr line (including its trace
//!   id). Off by default.
//! * `--trace-slow-ms N` — tail-based trace capture: retain the full
//!   span tree of every job whose service time reaches N ms (0 = every
//!   job) in a bounded ring, answerable post-hoc by a TRACE frame. Off
//!   by default (TRACE then only answers live jobs).
//! * `--trace-dir PATH` — also write each retained trace as a
//!   Perfetto-loadable `trace-<id>.json` under PATH (created if
//!   missing). Load one at <https://ui.perfetto.dev>.

use piped::{PipedServer, ServerConfig};

fn usage_and_exit(message: &str) -> ! {
    eprintln!("piped: {message}");
    eprintln!(
        "usage: piped [--listen ADDR] [--workers N] [--shards N] [--frame-budget N] \
         [--max-queue N] [--max-input-mb N] [--output-window N] [--cache-mb N] \
         [--no-cache] [--addr-file PATH] [--exit-on-drain] [--metrics-addr ADDR] \
         [--slow-log-ms N] [--trace-slow-ms N] [--trace-dir PATH]"
    );
    std::process::exit(2);
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        usage_and_exit(&format!("{flag} requires a value"));
    };
    value
        .parse()
        .unwrap_or_else(|_| usage_and_exit(&format!("invalid value for {flag}: {value:?}")))
}

fn main() {
    let mut listen = "127.0.0.1:0".to_string();
    let mut addr_file: Option<String> = None;
    let mut config = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = parse_value("--listen", args.next()),
            "--workers" => config.workers = parse_value("--workers", args.next()),
            "--shards" => config.shards = parse_value("--shards", args.next()),
            "--frame-budget" => {
                config.frame_budget = Some(parse_value("--frame-budget", args.next()));
            }
            "--max-queue" => config.max_queue = parse_value("--max-queue", args.next()),
            "--max-input-mb" => {
                config.max_input_bytes = parse_value::<usize>("--max-input-mb", args.next()) << 20;
            }
            "--output-window" => {
                config.output_window = parse_value("--output-window", args.next());
            }
            "--cache-mb" => {
                config.cache_bytes = Some(parse_value::<usize>("--cache-mb", args.next()) << 20);
            }
            "--no-cache" => config.cache = false,
            "--addr-file" => addr_file = Some(parse_value("--addr-file", args.next())),
            "--exit-on-drain" => config.exit_on_drain = true,
            "--metrics-addr" => {
                config.metrics_addr = Some(parse_value("--metrics-addr", args.next()));
            }
            "--slow-log-ms" => {
                config.slow_log_ms = Some(parse_value("--slow-log-ms", args.next()));
            }
            "--trace-slow-ms" => {
                config.trace_slow_ms = Some(parse_value("--trace-slow-ms", args.next()));
            }
            "--trace-dir" => {
                config.trace_dir = Some(parse_value("--trace-dir", args.next()));
            }
            "--help" | "-h" => usage_and_exit("pipeline job serving daemon"),
            other => usage_and_exit(&format!("unknown flag {other:?}")),
        }
    }

    let server = match PipedServer::bind(&listen, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("piped: failed to bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.local_addr().expect("bound listener has an address");
    println!("piped: listening on {addr}");
    if let Some(metrics) = server.metrics_addr() {
        println!("piped: serving metrics on http://{metrics}/metrics");
    }
    println!(
        "piped: serving workloads: {}",
        workloads::bytes::names().join(", ")
    );
    if let Some(path) = addr_file {
        // Write via a temp file + rename so a watcher never reads a
        // half-written address.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, addr.to_string()).expect("failed to write --addr-file");
        std::fs::rename(&tmp, &path).expect("failed to move --addr-file into place");
    }

    if let Err(e) = server.serve() {
        eprintln!("piped: accept loop failed: {e}");
        std::process::exit(1);
    }
    println!("piped: drained; exiting");
}
