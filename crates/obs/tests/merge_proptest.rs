//! Property-based tests for `obs::merge_dumps`: per-worker event rings —
//! including rings that wrapped and overwrote their oldest slots — merge
//! into one series globally sorted by timestamp, with ties broken by
//! worker index and each worker's own order preserved.

use obs::{merge_dumps, Event, EventKind, EventRing};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn wrapped_rings_merge_globally_sorted(
        pushes in proptest::collection::vec(0usize..64, 1..6),
        capacity in 4usize..20,
    ) {
        // Each worker gets its own small ring; push counts past the
        // capacity force overwrite-oldest wrapping on most cases.
        let dumps: Vec<Vec<Event>> = pushes
            .iter()
            .map(|&n| {
                let ring = EventRing::new(capacity);
                for i in 0..n {
                    ring.push(EventKind::Steal, i as u64);
                }
                ring.dump()
            })
            .collect();
        let merged = merge_dumps(&dumps);

        // Nothing is lost or invented by the merge.
        prop_assert_eq!(merged.len(), dumps.iter().map(Vec::len).sum::<usize>());

        // Globally sorted by coarse timestamp; equal timestamps come out
        // in worker-index order.
        prop_assert!(merged
            .windows(2)
            .all(|w| (w[0].1.at_micros, w[0].0) <= (w[1].1.at_micros, w[1].0)));

        // Stability: each worker's events appear in exactly its own dump
        // order (oldest surviving event first, even after wrapping).
        for (worker, dump) in dumps.iter().enumerate() {
            let mine: Vec<Event> = merged
                .iter()
                .filter(|&&(w, _)| w == worker)
                .map(|&(_, e)| e)
                .collect();
            prop_assert_eq!(&mine, dump);
        }
    }

    #[test]
    fn synthetic_ties_are_broken_by_worker_index(
        per_worker in proptest::collection::vec(
            proptest::collection::vec(0u64..8, 0..16),
            1..5,
        ),
    ) {
        // Hand-built dumps with deliberately colliding timestamps (each
        // worker's dump is sorted, as EventRing::dump guarantees).
        let dumps: Vec<Vec<Event>> = per_worker
            .iter()
            .map(|ts| {
                let mut ts = ts.clone();
                ts.sort_unstable();
                ts.iter()
                    .enumerate()
                    .map(|(i, &at)| Event {
                        kind: EventKind::Steal,
                        at_micros: at,
                        arg: i as u64,
                    })
                    .collect()
            })
            .collect();
        let merged = merge_dumps(&dumps);
        let keys: Vec<(u64, usize)> = merged
            .iter()
            .map(|&(w, e)| (e.at_micros, w))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(keys, sorted);
    }
}
