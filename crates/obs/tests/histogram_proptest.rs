//! Property-based tests for the observability histogram: quantile
//! estimates stay within the documented ≤ 6.25 % overestimate of exact
//! sorted-sample percentiles, `merge` is exactly equivalent to recording
//! into one histogram, and concurrent recorders lose no counts.

use obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Values spanning the regimes the bucketing treats differently: exact
/// unit buckets (< 16), small log-linear buckets, and full-width values.
fn value() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..16,
        16u64..4_096,
        (0u64..1_000_000_000).prop_map(|v| v * 1_000),
        any::<u64>().prop_map(|v| v >> (v % 40)),
    ]
}

fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(value(), 1..512)
}

/// The exact `q`-quantile of a multiset: its `⌈q·n⌉`-th smallest value
/// (the definition `HistogramSnapshot::quantile` estimates).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[target - 1]
}

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_within_documented_error(values in samples()) {
        let snap = record_all(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0f64, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = snap.quantile(q);
            prop_assert!(est >= exact, "q={q}: estimate {est} < exact {exact}");
            if exact < 16 {
                prop_assert_eq!(est, exact, "sub-16 values are exact (q={})", q);
            } else {
                prop_assert!(
                    (est as f64) < (exact as f64) * 1.0625,
                    "q={q}: estimate {est} exceeds exact {exact} by ≥ 6.25 %"
                );
            }
        }
    }

    #[test]
    fn count_sum_max_match_the_sample(values in samples()) {
        let snap = record_all(&values);
        prop_assert_eq!(snap.count(), values.len() as u64);
        let sum = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(snap.sum(), sum);
        let max = *values.iter().max().unwrap();
        prop_assert!(snap.max_value() >= max);
        prop_assert!(max < 16 || (snap.max_value() as f64) < (max as f64) * 1.0625);
        // count_le at the estimate's edge must cover the target rank.
        prop_assert_eq!(snap.count_le(snap.quantile(1.0)), snap.count());
    }

    #[test]
    fn merge_equals_one_histogram(a in samples(), b in samples()) {
        let merged = record_all(&a).merge(&record_all(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, record_all(&all));
    }

    #[test]
    fn since_recovers_the_delta(a in samples(), b in samples()) {
        let h = Histogram::new();
        for &v in &a {
            h.record(v);
        }
        let earlier = h.snapshot();
        for &v in &b {
            h.record(v);
        }
        prop_assert_eq!(h.snapshot().since(&earlier), record_all(&b));
    }

    #[test]
    fn concurrent_recorders_lose_no_counts(values in samples(), threads in 2usize..5) {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for &v in &values {
                        h.record(v);
                    }
                });
            }
        });
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), (threads * values.len()) as u64);
        let one: u64 = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        let mut total = 0u64;
        for _ in 0..threads {
            total = total.wrapping_add(one);
        }
        prop_assert_eq!(snap.sum(), total);
    }
}
