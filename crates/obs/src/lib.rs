//! **obs** — zero-dependency observability primitives for the serving
//! stack: a lock-free, mergeable log-linear histogram and a bounded
//! per-worker event ring (the "flight recorder").
//!
//! Both types follow the repository's instrumentation discipline (see
//! `crates/piper/src/metrics.rs`): relaxed atomics only, no locks, no
//! allocation on the record path, so measurement never perturbs the
//! scheduling fast paths it observes.
//!
//! # Histogram accuracy
//!
//! [`Histogram`] is log-linear with [`SUB_BITS`] = 4: each power-of-two
//! octave is split into 16 equal-width linear buckets, and values below 16
//! get exact unit buckets. A recorded value `x ≥ 16` therefore lands in a
//! bucket whose width is less than `x / 16`. Quantile estimates report the
//! bucket's inclusive **upper edge**, so for any quantile `q`:
//!
//! > `quantile(q)` is at least the exact `q`-quantile of the recorded
//! > multiset and exceeds it by a factor strictly less than
//! > `1 + 2⁻⁴ = 1.0625` (6.25 % relative error, always an overestimate;
//! > values below 16 are exact).
//!
//! The histogram is unit-agnostic; the serving layers record nanoseconds.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` linear
/// buckets, bounding quantile relative error by `2^-SUB_BITS` (6.25 %).
pub const SUB_BITS: u32 = 4;

const SUB_COUNT: usize = 1 << SUB_BITS;
const SUB_MASK: u64 = (SUB_COUNT - 1) as u64;

/// Total bucket count covering the full `u64` range: `SUB_COUNT` exact
/// unit buckets plus `SUB_COUNT` sub-buckets for each of the 60 remaining
/// octaves (exponents `SUB_BITS .. 64`).
pub const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_COUNT;

/// The bucket index a value lands in.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT as u64 {
        value as usize
    } else {
        let e = 63 - value.leading_zeros();
        (((e - SUB_BITS + 1) as usize) << SUB_BITS)
            + ((value >> (e - SUB_BITS)) & SUB_MASK) as usize
    }
}

/// The largest value that maps to bucket `index` (the inclusive upper
/// edge quantile estimates report).
#[inline]
fn bucket_upper(index: usize) -> u64 {
    if index < SUB_COUNT {
        index as u64
    } else {
        let e = (index >> SUB_BITS) as u32 + SUB_BITS - 1;
        let sub = (index as u64) & SUB_MASK;
        let width = 1u64 << (e - SUB_BITS);
        // Wraps only for the very last bucket (2^64 - 1), where the
        // arithmetic lands exactly on u64::MAX.
        (1u64 << e)
            .wrapping_add((sub + 1).wrapping_mul(width))
            .wrapping_sub(1)
    }
}

/// A lock-free log-linear bucket histogram (atomic `u64` buckets).
///
/// Any number of threads may [`record`](Histogram::record) concurrently;
/// [`snapshot`](Histogram::snapshot) can be taken at any time without
/// stopping recorders. See the [module docs](self) for the documented
/// relative-error bound on quantile estimates.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    /// Sum of recorded values (wrapping; used for the mean only).
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram (≈ 7.6 KiB of zeroed buckets).
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value. Lock-free: two relaxed `fetch_add`s.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy of every bucket. The total count is derived
    /// from the bucket reads themselves, so `count == Σ buckets` holds in
    /// every snapshot even while recorders are running.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while counts.last() == Some(&0) {
            counts.pop();
        }
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("p50", &snap.quantile(0.50))
            .field("p99", &snap.quantile(0.99))
            .finish()
    }
}

/// A point-in-time copy of a [`Histogram`]: mergeable, subtractable, and
/// the carrier of quantile estimates. Trailing empty buckets are trimmed,
/// so a snapshot of a low-range distribution stays small.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl HistogramSnapshot {
    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (wrapping at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile estimate (`q` in `[0, 1]`): the inclusive upper
    /// edge of the bucket holding the `⌈q·count⌉`-th smallest value. See
    /// the [module docs](self) for the ≤ 6.25 % overestimate bound.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return bucket_upper(i);
            }
        }
        bucket_upper(self.counts.len().saturating_sub(1))
    }

    /// Upper edge of the highest non-empty bucket (an overestimate of the
    /// maximum recorded value by < 6.25 %). Returns 0 when empty.
    pub fn max_value(&self) -> u64 {
        match self.counts.iter().rposition(|&c| c != 0) {
            Some(i) => bucket_upper(i),
            None => 0,
        }
    }

    /// How many recorded values are certainly `≤ bound`: the sum of every
    /// bucket whose upper edge is `≤ bound` (a lower bound when `bound`
    /// falls inside a bucket). This is the Prometheus `le` accumulator.
    pub fn count_le(&self, bound: u64) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .take_while(|(i, _)| bucket_upper(*i) <= bound)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Bucket-wise sum, for aggregating shards or workers. Merging `n`
    /// snapshots is exactly equivalent to having recorded every value into
    /// one histogram.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut counts = vec![0u64; self.counts.len().max(other.counts.len())];
        for (i, &c) in self.counts.iter().enumerate() {
            counts[i] += c;
        }
        for (i, &c) in other.counts.iter().enumerate() {
            counts[i] += c;
        }
        HistogramSnapshot {
            counts,
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
        }
    }

    /// Bucket-wise saturating difference `self - earlier`, mirroring
    /// `piper::MetricsSnapshot::since` — the distribution of values
    /// recorded between the two snapshots.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut counts: Vec<u64> = self.counts.clone();
        for (i, &c) in earlier.counts.iter().enumerate() {
            if let Some(slot) = counts.get_mut(i) {
                *slot = slot.saturating_sub(c);
            }
        }
        while counts.last() == Some(&0) {
            counts.pop();
        }
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.wrapping_sub(earlier.sum),
        }
    }

    /// `(upper_edge, cumulative_count)` for every non-empty bucket, in
    /// ascending order — the raw series a Prometheus exposition renders.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                cumulative += c;
                out.push((bucket_upper(i), cumulative));
            }
        }
        out
    }
}

// --------------------------------------------------------- flight recorder --

/// What a flight-recorder event records. The discriminants are stable wire
/// values (packed into the ring's atomics), so `0` is reserved for "empty
/// slot".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A worker stole work from another worker's deque (`arg` = victim
    /// worker index).
    Steal = 1,
    /// An iteration suspended on an unsatisfied cross edge (`arg` = stage).
    Suspend = 2,
    /// A suspended frame was resumed (`arg` = stage).
    Resume = 3,
    /// The control frame parked because the throttle window was full
    /// (`arg` = effective window).
    Throttle = 4,
    /// The pool was resized (`arg` = new worker count).
    Resize = 5,
    /// A job panicked (`arg` = job id).
    Panic = 6,
}

impl EventKind {
    fn from_u8(value: u8) -> Option<EventKind> {
        Some(match value {
            1 => EventKind::Steal,
            2 => EventKind::Suspend,
            3 => EventKind::Resume,
            4 => EventKind::Throttle,
            5 => EventKind::Resize,
            6 => EventKind::Panic,
            _ => return None,
        })
    }

    /// Lower-case name, for log lines and dumps.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Steal => "steal",
            EventKind::Suspend => "suspend",
            EventKind::Resume => "resume",
            EventKind::Throttle => "throttle",
            EventKind::Resize => "resize",
            EventKind::Panic => "panic",
        }
    }
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Coarse timestamp: microseconds since [`coarse_micros`]'s process
    /// epoch.
    pub at_micros: u64,
    /// Event-kind-specific argument (see [`EventKind`]).
    pub arg: u64,
}

/// Microseconds since the first call in this process (the flight
/// recorder's shared epoch). Coarse by design: event ordering across
/// workers only needs to be approximately right.
pub fn coarse_micros() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// A bounded, lock-free ring of scheduler events — the per-worker flight
/// recorder. Writers never block and never allocate; when the ring is
/// full the oldest events are overwritten. [`dump`](EventRing::dump) may
/// race an active writer and then drops the (at most one) torn slot — the
/// recorder is a diagnostic surface, not an audit log.
pub struct EventRing {
    /// Two words per slot: `kind << 56 | at_micros` then `arg`.
    slots: Box<[AtomicU64]>,
    head: AtomicU64,
    capacity: usize,
}

impl EventRing {
    /// Creates a ring holding up to `capacity` events (rounded up to a
    /// power of two, minimum 8).
    pub fn new(capacity: usize) -> EventRing {
        let capacity = capacity.max(8).next_power_of_two();
        EventRing {
            slots: (0..capacity * 2).map(|_| AtomicU64::new(0)).collect(),
            head: AtomicU64::new(0),
            capacity,
        }
    }

    /// Appends one event, overwriting the oldest if full. Lock-free.
    #[inline]
    pub fn push(&self, kind: EventKind, arg: u64) {
        let at = coarse_micros() & ((1 << 56) - 1);
        let index = self.head.fetch_add(1, Ordering::Relaxed) as usize % self.capacity;
        self.slots[index * 2 + 1].store(arg, Ordering::Relaxed);
        self.slots[index * 2].store(((kind as u64) << 56) | at, Ordering::Release);
    }

    /// The retained events, oldest first (up to `capacity`). Best-effort
    /// under concurrent writes: a slot being overwritten mid-dump may be
    /// skipped or carry the new event.
    pub fn dump(&self) -> Vec<Event> {
        let head = self.head.load(Ordering::Acquire);
        let len = (head as usize).min(self.capacity);
        let start = head - len as u64;
        let mut out = Vec::with_capacity(len);
        for logical in start..head {
            let index = logical as usize % self.capacity;
            let word = self.slots[index * 2].load(Ordering::Acquire);
            let arg = self.slots[index * 2 + 1].load(Ordering::Relaxed);
            if let Some(kind) = EventKind::from_u8((word >> 56) as u8) {
                out.push(Event {
                    kind,
                    at_micros: word & ((1 << 56) - 1),
                    arg,
                });
            }
        }
        out
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.capacity)
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

/// Merges per-worker dumps into one `(worker, event)` series ordered by
/// coarse timestamp — the shape a panic dump prints.
///
/// Ordering contract: globally sorted by `at_micros`; events with equal
/// timestamps come out in worker-index order, and within one worker in
/// that worker's dump order (oldest first, even for rings that wrapped
/// and overwrote their oldest events).
pub fn merge_dumps(dumps: &[Vec<Event>]) -> Vec<(usize, Event)> {
    let mut out: Vec<(usize, Event)> = dumps
        .iter()
        .enumerate()
        .flat_map(|(worker, events)| events.iter().map(move |&e| (worker, e)))
        .collect();
    // A stable sort on (timestamp, worker): the flat_map above emits each
    // worker's events in dump order, so intra-worker order is preserved
    // for free, and the explicit worker key pins inter-worker ties
    // instead of leaving them to collection order.
    out.sort_by_key(|&(worker, e)| (e.at_micros, worker));
    out
}

// ----------------------------------------------------------- span tracing --

/// The span id every trace's root span uses. [`TraceBuffer::next_span_id`]
/// starts handing out ids *above* this value, so the layer that owns the
/// trace (the job submitter) can record the root last — when the job
/// finishes — while children recorded earlier already point at it.
pub const ROOT_SPAN_ID: u64 = 1;

/// Deterministic 64-bit mixer (splitmix64) — the stack's trace-id
/// generator. Advances `state` and returns the mixed output; any nonzero
/// seed yields a full-period, well-distributed sequence.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What a span measures. Discriminants are stable packed values (`0` is
/// reserved for "uncommitted slot"), mirroring [`EventKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// The whole job, submit to terminal (the root span; `arg` = job id).
    Job = 1,
    /// Waiting in the submission queue for admission.
    QueueWait = 2,
    /// The admission step itself: binding the launch closure and spawning
    /// the pipeline on the pool.
    Admission = 3,
    /// Pipeline execution, admission to terminal.
    Run = 4,
    /// A result-cache lookup (`arg`: 0 = miss, 1 = hit, 2 = coalesced).
    CacheLookup = 5,
    /// One sampled pipeline node execution (`arg` = stage number).
    Stage = 6,
}

impl SpanKind {
    fn from_u8(value: u8) -> Option<SpanKind> {
        Some(match value {
            1 => SpanKind::Job,
            2 => SpanKind::QueueWait,
            3 => SpanKind::Admission,
            4 => SpanKind::Run,
            5 => SpanKind::CacheLookup,
            6 => SpanKind::Stage,
            _ => return None,
        })
    }

    /// Lower-case name, for trace dumps and Perfetto event names.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Job => "job",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::Admission => "admission",
            SpanKind::Run => "run",
            SpanKind::CacheLookup => "cache_lookup",
            SpanKind::Stage => "stage",
        }
    }
}

/// One decoded span record: a closed interval of the job's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Span id, unique within its trace ([`ROOT_SPAN_ID`] for the root).
    pub id: u64,
    /// Parent span id (0 for the root).
    pub parent: u64,
    /// What the span measures.
    pub kind: SpanKind,
    /// Start, in [`coarse_micros`] ticks.
    pub start_micros: u64,
    /// End, in [`coarse_micros`] ticks (`>= start_micros`).
    pub end_micros: u64,
    /// Kind-specific argument (see [`SpanKind`]).
    pub arg: u64,
}

/// A fixed-capacity, lock-free buffer of completed [`Span`]s — one per
/// traced job.
///
/// The record path ([`record`](TraceBuffer::record)) claims a slot with
/// one atomic increment and writes five words, the last with `Release`
/// ordering as the commit mark; it never blocks, never allocates, and
/// once the buffer is full further spans are counted in
/// [`dropped`](TraceBuffer::dropped) and discarded (the earliest spans
/// are the structural ones worth keeping). [`dump`](TraceBuffer::dump)
/// may run concurrently with writers and skips uncommitted slots.
pub struct TraceBuffer {
    trace_id: u64,
    /// Five words per slot: `kind << 56 | start_micros`, end, arg, id,
    /// parent. The first word doubles as the commit mark (kind 0 = empty)
    /// and is stored `Release`, last.
    slots: Box<[AtomicU64]>,
    /// Next slot to claim (may run past `capacity`; the excess is the
    /// drop count).
    next: AtomicU64,
    /// Span-id allocator; starts just above [`ROOT_SPAN_ID`].
    next_id: AtomicU64,
    capacity: usize,
}

const SPAN_WORDS: usize = 5;

/// Slots a [`TraceBuffer`] keeps free of best-effort spans (see
/// [`TraceBuffer::record_elapsed_best_effort`]): enough for every
/// lifecycle span a job records (root, cache lookup, queue wait,
/// admission, run) plus slack for the advisory check's overshoot.
pub const RESERVED_SPAN_SLOTS: usize = 8;

impl TraceBuffer {
    /// Creates a buffer for one trace, holding up to `capacity` spans
    /// (minimum 8). All storage is allocated here; recording is
    /// allocation-free.
    pub fn new(trace_id: u64, capacity: usize) -> TraceBuffer {
        let capacity = capacity.max(8);
        TraceBuffer {
            trace_id,
            slots: (0..capacity * SPAN_WORDS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            next: AtomicU64::new(0),
            next_id: AtomicU64::new(ROOT_SPAN_ID + 1),
            capacity,
        }
    }

    /// The trace id every span in this buffer belongs to.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Allocates a fresh span id (unique within this trace, never
    /// [`ROOT_SPAN_ID`]).
    #[inline]
    pub fn next_span_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Records one completed span. Lock-free and allocation-free; a span
    /// arriving after the buffer filled is dropped (and counted).
    #[inline]
    pub fn record(
        &self,
        id: u64,
        parent: u64,
        kind: SpanKind,
        start_micros: u64,
        end_micros: u64,
        arg: u64,
    ) {
        let index = self.next.fetch_add(1, Ordering::Relaxed) as usize;
        if index >= self.capacity {
            return;
        }
        let base = index * SPAN_WORDS;
        self.slots[base + 1].store(end_micros, Ordering::Relaxed);
        self.slots[base + 2].store(arg, Ordering::Relaxed);
        self.slots[base + 3].store(id, Ordering::Relaxed);
        self.slots[base + 4].store(parent, Ordering::Relaxed);
        let start = start_micros & ((1 << 56) - 1);
        self.slots[base].store(((kind as u64) << 56) | start, Ordering::Release);
    }

    /// Convenience: records a span ending now whose duration is `elapsed`,
    /// so callers timing with a monotonic [`Instant`] need no extra clock
    /// read at span start.
    #[inline]
    pub fn record_elapsed(
        &self,
        id: u64,
        parent: u64,
        kind: SpanKind,
        elapsed: Duration,
        arg: u64,
    ) {
        let end = coarse_micros();
        let start = end.saturating_sub(elapsed.as_micros().min(u64::MAX as u128) as u64);
        self.record(id, parent, kind, start, end, arg);
    }

    /// [`record_elapsed`](TraceBuffer::record_elapsed) for high-volume
    /// best-effort spans (sampled per-stage timings): stops claiming
    /// slots once only [`RESERVED_SPAN_SLOTS`] remain, so a long job's
    /// stage samples can never crowd out its lifecycle spans (root, queue
    /// wait, run, …). The check is advisory — concurrent recorders may
    /// overshoot by at most one slot each — which the reserve absorbs.
    #[inline]
    pub fn record_elapsed_best_effort(
        &self,
        id: u64,
        parent: u64,
        kind: SpanKind,
        elapsed: Duration,
        arg: u64,
    ) {
        let claimed = self.next.load(Ordering::Relaxed) as usize;
        if claimed + RESERVED_SPAN_SLOTS >= self.capacity {
            return;
        }
        self.record_elapsed(id, parent, kind, elapsed, arg);
    }

    /// How many spans were discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        (self.next.load(Ordering::Relaxed)).saturating_sub(self.capacity as u64)
    }

    /// The committed spans, sorted by start time (ties keep record order).
    /// Safe to call while writers are still recording: a slot claimed but
    /// not yet committed is skipped.
    pub fn dump(&self) -> Vec<Span> {
        let claimed = (self.next.load(Ordering::Acquire) as usize).min(self.capacity);
        let mut out = Vec::with_capacity(claimed);
        for index in 0..claimed {
            let base = index * SPAN_WORDS;
            let word = self.slots[base].load(Ordering::Acquire);
            if let Some(kind) = SpanKind::from_u8((word >> 56) as u8) {
                out.push(Span {
                    id: self.slots[base + 3].load(Ordering::Relaxed),
                    parent: self.slots[base + 4].load(Ordering::Relaxed),
                    kind,
                    start_micros: word & ((1 << 56) - 1),
                    end_micros: self.slots[base + 1].load(Ordering::Relaxed),
                    arg: self.slots[base + 2].load(Ordering::Relaxed),
                });
            }
        }
        out.sort_by_key(|s| s.start_micros);
        out
    }
}

impl std::fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("trace_id", &format_args!("{:016x}", self.trace_id))
            .field("capacity", &self.capacity)
            .field("recorded", &self.next.load(Ordering::Relaxed))
            .finish()
    }
}

/// Renders spans as Chrome trace-event JSON (the `traceEvents` array
/// format), loadable directly in `ui.perfetto.dev` or
/// `chrome://tracing`.
///
/// Each span becomes one complete (`"ph":"X"`) event with microsecond
/// `ts`/`dur`; job-structure spans share track 1 so Perfetto nests them
/// by containment, sampled stage spans go on track 2 (they come from
/// concurrent workers and may overlap). Span/parent ids and the kind
/// argument ride along in `args`.
pub fn perfetto_json(trace_id: u64, spans: &[Span]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 128);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let tid = match s.kind {
            SpanKind::Stage => 2,
            _ => 1,
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"piped\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"trace_id\":\"{:016x}\",\"span\":{},\
             \"parent\":{},\"arg\":{}}}}}",
            s.kind.name(),
            s.start_micros,
            s.end_micros.saturating_sub(s.start_micros),
            tid,
            trace_id,
            s.id,
            s.parent,
            s.arg,
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_edges_are_monotone_and_cover_u64() {
        let mut previous = None;
        for i in 0..BUCKETS {
            let upper = bucket_upper(i);
            if let Some(p) = previous {
                assert!(upper > p, "bucket {i} upper {upper} <= previous {p}");
            }
            previous = Some(upper);
        }
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
        for v in [16, 17, 1000, 1 << 20, u64::MAX / 3, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_upper(i) >= v);
            if i > 0 {
                assert!(bucket_upper(i - 1) < v);
            }
        }
    }

    #[test]
    fn quantile_overestimates_by_less_than_the_documented_bound() {
        let h = Histogram::new();
        let values: Vec<u64> = (1..=1000).map(|i| i * 37).collect();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        for q in [0.5f64, 0.9, 0.99, 0.999] {
            let exact = values[((q * 1000.0).ceil() as usize - 1).min(999)];
            let estimate = snap.quantile(q);
            assert!(estimate >= exact, "q={q}: {estimate} < {exact}");
            assert!(
                (estimate as f64) < exact as f64 * 1.0625,
                "q={q}: {estimate} vs exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_single_histogram_and_since_subtracts() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..500u64 {
            let target = if v % 2 == 0 { &a } else { &b };
            target.record(v * v);
            all.record(v * v);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
        assert_eq!(merged.since(&a.snapshot()), b.snapshot());
        assert_eq!(merged.since(&merged).count(), 0);
    }

    #[test]
    fn count_le_matches_cumulative_buckets() {
        let h = Histogram::new();
        for v in [1u64, 5, 100, 1000, 100_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count_le(0), 0);
        assert_eq!(snap.count_le(5), 2);
        assert_eq!(snap.count_le(u64::MAX), 5);
        let series = snap.cumulative_buckets();
        assert_eq!(series.len(), 5);
        assert_eq!(series.last().unwrap().1, 5);
    }

    #[test]
    fn ring_keeps_the_newest_events() {
        let ring = EventRing::new(8);
        for i in 0..20u64 {
            ring.push(EventKind::Steal, i);
        }
        let events = ring.dump();
        assert_eq!(events.len(), 8);
        assert_eq!(events.first().unwrap().arg, 12);
        assert_eq!(events.last().unwrap().arg, 19);
        assert!(events.windows(2).all(|w| w[0].at_micros <= w[1].at_micros));
    }

    #[test]
    fn splitmix64_is_deterministic_and_well_spread() {
        let mut a = 0x1234_5678u64;
        let mut b = 0x1234_5678u64;
        let xs: Vec<u64> = (0..64).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..64).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<u64> = xs.iter().copied().collect();
        assert_eq!(distinct.len(), xs.len());
        assert!(xs.iter().all(|&x| x != 0));
    }

    #[test]
    fn trace_buffer_records_and_dumps_sorted() {
        let buf = TraceBuffer::new(0xABCD, 16);
        assert_eq!(buf.trace_id(), 0xABCD);
        let child = buf.next_span_id();
        assert_ne!(child, ROOT_SPAN_ID);
        // Recorded out of start order; dump sorts by start time.
        buf.record(child, ROOT_SPAN_ID, SpanKind::QueueWait, 50, 80, 0);
        buf.record(ROOT_SPAN_ID, 0, SpanKind::Job, 10, 100, 7);
        let spans = buf.dump();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, SpanKind::Job);
        assert_eq!(spans[0].id, ROOT_SPAN_ID);
        assert_eq!(spans[0].arg, 7);
        assert_eq!(spans[1].parent, ROOT_SPAN_ID);
        assert_eq!(buf.dropped(), 0);
    }

    #[test]
    fn trace_buffer_overflow_drops_and_counts() {
        let buf = TraceBuffer::new(1, 8);
        for i in 0..20u64 {
            buf.record(
                buf.next_span_id(),
                ROOT_SPAN_ID,
                SpanKind::Stage,
                i,
                i + 1,
                i,
            );
        }
        assert_eq!(buf.dump().len(), 8);
        assert_eq!(buf.dropped(), 12);
        // The earliest (structural) spans are the ones retained.
        assert_eq!(buf.dump().first().unwrap().arg, 0);
    }

    #[test]
    fn best_effort_spans_leave_the_reserved_tail_free() {
        let buf = TraceBuffer::new(1, 16);
        // Best-effort spam stops at capacity - RESERVED_SPAN_SLOTS…
        for i in 0..100u64 {
            buf.record_elapsed_best_effort(
                buf.next_span_id(),
                ROOT_SPAN_ID,
                SpanKind::Stage,
                Duration::from_micros(1),
                i,
            );
        }
        assert_eq!(buf.dump().len(), 16 - RESERVED_SPAN_SLOTS);
        assert_eq!(buf.dropped(), 0, "reserve must not count as drops");
        // …so lifecycle spans recorded afterwards always land.
        buf.record_elapsed(ROOT_SPAN_ID, 0, SpanKind::Job, Duration::from_micros(5), 0);
        assert!(buf.dump().iter().any(|s| s.kind == SpanKind::Job));
    }

    #[test]
    fn record_elapsed_ends_now_and_never_underflows() {
        let buf = TraceBuffer::new(1, 8);
        // An elapsed time longer than the process has been alive must
        // clamp the start to 0 rather than wrap.
        buf.record_elapsed(2, 1, SpanKind::Run, Duration::from_secs(1 << 40), 0);
        let spans = buf.dump();
        assert_eq!(spans[0].start_micros, 0);
        assert!(spans[0].end_micros >= spans[0].start_micros);
    }

    // A minimal JSON value and recursive-descent parser, enough to verify
    // the Perfetto renderer emits *valid JSON* and to round-trip the span
    // fields back out of it. Test-only; the production stack never parses
    // JSON.
    #[derive(Debug, PartialEq)]
    enum Json {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        fn get(&self, key: &str) -> &Json {
            match self {
                Json::Obj(fields) => fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .unwrap_or_else(|| panic!("missing key {key}")),
                other => panic!("get({key}) on non-object {other:?}"),
            }
        }

        fn num(&self) -> f64 {
            match self {
                Json::Num(n) => *n,
                other => panic!("not a number: {other:?}"),
            }
        }

        fn str(&self) -> &str {
            match self {
                Json::Str(s) => s,
                other => panic!("not a string: {other:?}"),
            }
        }
    }

    fn parse_json(text: &str) -> Json {
        let bytes = text.as_bytes();
        let mut at = 0usize;
        let value = parse_value(bytes, &mut at);
        skip_ws(bytes, &mut at);
        assert_eq!(at, bytes.len(), "trailing garbage after JSON value");
        value
    }

    fn skip_ws(b: &[u8], at: &mut usize) {
        while *at < b.len() && matches!(b[*at], b' ' | b'\t' | b'\n' | b'\r') {
            *at += 1;
        }
    }

    fn expect(b: &[u8], at: &mut usize, c: u8) {
        assert!(
            *at < b.len() && b[*at] == c,
            "expected {:?} at {at}",
            c as char
        );
        *at += 1;
    }

    fn parse_value(b: &[u8], at: &mut usize) -> Json {
        skip_ws(b, at);
        match b[*at] {
            b'{' => {
                *at += 1;
                let mut fields = Vec::new();
                skip_ws(b, at);
                if b[*at] == b'}' {
                    *at += 1;
                    return Json::Obj(fields);
                }
                loop {
                    skip_ws(b, at);
                    let key = match parse_value(b, at) {
                        Json::Str(s) => s,
                        other => panic!("non-string key {other:?}"),
                    };
                    skip_ws(b, at);
                    expect(b, at, b':');
                    fields.push((key, parse_value(b, at)));
                    skip_ws(b, at);
                    match b[*at] {
                        b',' => *at += 1,
                        b'}' => {
                            *at += 1;
                            return Json::Obj(fields);
                        }
                        c => panic!("expected , or }} got {:?}", c as char),
                    }
                }
            }
            b'[' => {
                *at += 1;
                let mut items = Vec::new();
                skip_ws(b, at);
                if b[*at] == b']' {
                    *at += 1;
                    return Json::Arr(items);
                }
                loop {
                    items.push(parse_value(b, at));
                    skip_ws(b, at);
                    match b[*at] {
                        b',' => *at += 1,
                        b']' => {
                            *at += 1;
                            return Json::Arr(items);
                        }
                        c => panic!("expected , or ] got {:?}", c as char),
                    }
                }
            }
            b'"' => {
                *at += 1;
                let mut s = String::new();
                loop {
                    match b[*at] {
                        b'"' => {
                            *at += 1;
                            return Json::Str(s);
                        }
                        b'\\' => {
                            *at += 1;
                            match b[*at] {
                                b'"' => s.push('"'),
                                b'\\' => s.push('\\'),
                                b'n' => s.push('\n'),
                                c => panic!("unsupported escape \\{}", c as char),
                            }
                            *at += 1;
                        }
                        c => {
                            s.push(c as char);
                            *at += 1;
                        }
                    }
                }
            }
            b't' => {
                assert_eq!(&b[*at..*at + 4], b"true");
                *at += 4;
                Json::Bool(true)
            }
            b'f' => {
                assert_eq!(&b[*at..*at + 5], b"false");
                *at += 5;
                Json::Bool(false)
            }
            b'n' => {
                assert_eq!(&b[*at..*at + 4], b"null");
                *at += 4;
                Json::Null
            }
            _ => {
                let start = *at;
                while *at < b.len()
                    && matches!(b[*at], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *at += 1;
                }
                Json::Num(text_slice(b, start, *at).parse().expect("bad number"))
            }
        }
    }

    fn text_slice(b: &[u8], from: usize, to: usize) -> &str {
        std::str::from_utf8(&b[from..to]).unwrap()
    }

    #[test]
    fn perfetto_json_parses_and_round_trips() {
        let buf = TraceBuffer::new(0xDEAD_BEEF_0BAD_CAFE, 16);
        let q = buf.next_span_id();
        let r = buf.next_span_id();
        buf.record(ROOT_SPAN_ID, 0, SpanKind::Job, 10, 500, 42);
        buf.record(q, ROOT_SPAN_ID, SpanKind::QueueWait, 10, 60, 0);
        buf.record(r, ROOT_SPAN_ID, SpanKind::Run, 60, 500, 0);
        buf.record(
            buf.next_span_id(),
            ROOT_SPAN_ID,
            SpanKind::Stage,
            100,
            140,
            3,
        );
        let spans = buf.dump();
        let rendered = perfetto_json(buf.trace_id(), &spans);

        let doc = parse_json(&rendered);
        let events = match doc.get("traceEvents") {
            Json::Arr(items) => items,
            other => panic!("traceEvents not an array: {other:?}"),
        };
        assert_eq!(events.len(), spans.len());

        // Round-trip: rebuild each span from the parsed JSON and compare.
        for (event, span) in events.iter().zip(&spans) {
            assert_eq!(event.get("ph").str(), "X");
            assert_eq!(event.get("name").str(), span.kind.name());
            let args = event.get("args");
            assert_eq!(
                args.get("trace_id").str(),
                format!("{:016x}", buf.trace_id())
            );
            let rebuilt = Span {
                id: args.get("span").num() as u64,
                parent: args.get("parent").num() as u64,
                kind: span.kind,
                start_micros: event.get("ts").num() as u64,
                end_micros: event.get("ts").num() as u64 + event.get("dur").num() as u64,
                arg: args.get("arg").num() as u64,
            };
            assert_eq!(&rebuilt, span);
        }
    }

    #[test]
    fn merge_dumps_orders_by_time_then_worker() {
        let e = |at: u64, arg: u64| Event {
            kind: EventKind::Steal,
            at_micros: at,
            arg,
        };
        let merged = merge_dumps(&[
            vec![e(5, 0), e(9, 1)],
            vec![e(5, 2), e(7, 3)],
            vec![e(1, 4), e(5, 5)],
        ]);
        let order: Vec<(u64, usize)> = merged.iter().map(|&(w, ev)| (ev.at_micros, w)).collect();
        assert_eq!(order, vec![(1, 2), (5, 0), (5, 1), (5, 2), (7, 1), (9, 0)]);
    }

    #[test]
    fn concurrent_recorders_lose_no_counts() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 40_000);
    }
}
