//! **obs** — zero-dependency observability primitives for the serving
//! stack: a lock-free, mergeable log-linear histogram and a bounded
//! per-worker event ring (the "flight recorder").
//!
//! Both types follow the repository's instrumentation discipline (see
//! `crates/piper/src/metrics.rs`): relaxed atomics only, no locks, no
//! allocation on the record path, so measurement never perturbs the
//! scheduling fast paths it observes.
//!
//! # Histogram accuracy
//!
//! [`Histogram`] is log-linear with [`SUB_BITS`] = 4: each power-of-two
//! octave is split into 16 equal-width linear buckets, and values below 16
//! get exact unit buckets. A recorded value `x ≥ 16` therefore lands in a
//! bucket whose width is less than `x / 16`. Quantile estimates report the
//! bucket's inclusive **upper edge**, so for any quantile `q`:
//!
//! > `quantile(q)` is at least the exact `q`-quantile of the recorded
//! > multiset and exceeds it by a factor strictly less than
//! > `1 + 2⁻⁴ = 1.0625` (6.25 % relative error, always an overestimate;
//! > values below 16 are exact).
//!
//! The histogram is unit-agnostic; the serving layers record nanoseconds.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` linear
/// buckets, bounding quantile relative error by `2^-SUB_BITS` (6.25 %).
pub const SUB_BITS: u32 = 4;

const SUB_COUNT: usize = 1 << SUB_BITS;
const SUB_MASK: u64 = (SUB_COUNT - 1) as u64;

/// Total bucket count covering the full `u64` range: `SUB_COUNT` exact
/// unit buckets plus `SUB_COUNT` sub-buckets for each of the 60 remaining
/// octaves (exponents `SUB_BITS .. 64`).
pub const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_COUNT;

/// The bucket index a value lands in.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT as u64 {
        value as usize
    } else {
        let e = 63 - value.leading_zeros();
        (((e - SUB_BITS + 1) as usize) << SUB_BITS)
            + ((value >> (e - SUB_BITS)) & SUB_MASK) as usize
    }
}

/// The largest value that maps to bucket `index` (the inclusive upper
/// edge quantile estimates report).
#[inline]
fn bucket_upper(index: usize) -> u64 {
    if index < SUB_COUNT {
        index as u64
    } else {
        let e = (index >> SUB_BITS) as u32 + SUB_BITS - 1;
        let sub = (index as u64) & SUB_MASK;
        let width = 1u64 << (e - SUB_BITS);
        // Wraps only for the very last bucket (2^64 - 1), where the
        // arithmetic lands exactly on u64::MAX.
        (1u64 << e)
            .wrapping_add((sub + 1).wrapping_mul(width))
            .wrapping_sub(1)
    }
}

/// A lock-free log-linear bucket histogram (atomic `u64` buckets).
///
/// Any number of threads may [`record`](Histogram::record) concurrently;
/// [`snapshot`](Histogram::snapshot) can be taken at any time without
/// stopping recorders. See the [module docs](self) for the documented
/// relative-error bound on quantile estimates.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    /// Sum of recorded values (wrapping; used for the mean only).
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram (≈ 7.6 KiB of zeroed buckets).
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value. Lock-free: two relaxed `fetch_add`s.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy of every bucket. The total count is derived
    /// from the bucket reads themselves, so `count == Σ buckets` holds in
    /// every snapshot even while recorders are running.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while counts.last() == Some(&0) {
            counts.pop();
        }
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("p50", &snap.quantile(0.50))
            .field("p99", &snap.quantile(0.99))
            .finish()
    }
}

/// A point-in-time copy of a [`Histogram`]: mergeable, subtractable, and
/// the carrier of quantile estimates. Trailing empty buckets are trimmed,
/// so a snapshot of a low-range distribution stays small.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl HistogramSnapshot {
    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (wrapping at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile estimate (`q` in `[0, 1]`): the inclusive upper
    /// edge of the bucket holding the `⌈q·count⌉`-th smallest value. See
    /// the [module docs](self) for the ≤ 6.25 % overestimate bound.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return bucket_upper(i);
            }
        }
        bucket_upper(self.counts.len().saturating_sub(1))
    }

    /// Upper edge of the highest non-empty bucket (an overestimate of the
    /// maximum recorded value by < 6.25 %). Returns 0 when empty.
    pub fn max_value(&self) -> u64 {
        match self.counts.iter().rposition(|&c| c != 0) {
            Some(i) => bucket_upper(i),
            None => 0,
        }
    }

    /// How many recorded values are certainly `≤ bound`: the sum of every
    /// bucket whose upper edge is `≤ bound` (a lower bound when `bound`
    /// falls inside a bucket). This is the Prometheus `le` accumulator.
    pub fn count_le(&self, bound: u64) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .take_while(|(i, _)| bucket_upper(*i) <= bound)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Bucket-wise sum, for aggregating shards or workers. Merging `n`
    /// snapshots is exactly equivalent to having recorded every value into
    /// one histogram.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut counts = vec![0u64; self.counts.len().max(other.counts.len())];
        for (i, &c) in self.counts.iter().enumerate() {
            counts[i] += c;
        }
        for (i, &c) in other.counts.iter().enumerate() {
            counts[i] += c;
        }
        HistogramSnapshot {
            counts,
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
        }
    }

    /// Bucket-wise saturating difference `self - earlier`, mirroring
    /// `piper::MetricsSnapshot::since` — the distribution of values
    /// recorded between the two snapshots.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut counts: Vec<u64> = self.counts.clone();
        for (i, &c) in earlier.counts.iter().enumerate() {
            if let Some(slot) = counts.get_mut(i) {
                *slot = slot.saturating_sub(c);
            }
        }
        while counts.last() == Some(&0) {
            counts.pop();
        }
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.wrapping_sub(earlier.sum),
        }
    }

    /// `(upper_edge, cumulative_count)` for every non-empty bucket, in
    /// ascending order — the raw series a Prometheus exposition renders.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                cumulative += c;
                out.push((bucket_upper(i), cumulative));
            }
        }
        out
    }
}

// --------------------------------------------------------- flight recorder --

/// What a flight-recorder event records. The discriminants are stable wire
/// values (packed into the ring's atomics), so `0` is reserved for "empty
/// slot".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A worker stole work from another worker's deque (`arg` = victim
    /// worker index).
    Steal = 1,
    /// An iteration suspended on an unsatisfied cross edge (`arg` = stage).
    Suspend = 2,
    /// A suspended frame was resumed (`arg` = stage).
    Resume = 3,
    /// The control frame parked because the throttle window was full
    /// (`arg` = effective window).
    Throttle = 4,
    /// The pool was resized (`arg` = new worker count).
    Resize = 5,
    /// A job panicked (`arg` = job id).
    Panic = 6,
}

impl EventKind {
    fn from_u8(value: u8) -> Option<EventKind> {
        Some(match value {
            1 => EventKind::Steal,
            2 => EventKind::Suspend,
            3 => EventKind::Resume,
            4 => EventKind::Throttle,
            5 => EventKind::Resize,
            6 => EventKind::Panic,
            _ => return None,
        })
    }

    /// Lower-case name, for log lines and dumps.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Steal => "steal",
            EventKind::Suspend => "suspend",
            EventKind::Resume => "resume",
            EventKind::Throttle => "throttle",
            EventKind::Resize => "resize",
            EventKind::Panic => "panic",
        }
    }
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Coarse timestamp: microseconds since [`coarse_micros`]'s process
    /// epoch.
    pub at_micros: u64,
    /// Event-kind-specific argument (see [`EventKind`]).
    pub arg: u64,
}

/// Microseconds since the first call in this process (the flight
/// recorder's shared epoch). Coarse by design: event ordering across
/// workers only needs to be approximately right.
pub fn coarse_micros() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// A bounded, lock-free ring of scheduler events — the per-worker flight
/// recorder. Writers never block and never allocate; when the ring is
/// full the oldest events are overwritten. [`dump`](EventRing::dump) may
/// race an active writer and then drops the (at most one) torn slot — the
/// recorder is a diagnostic surface, not an audit log.
pub struct EventRing {
    /// Two words per slot: `kind << 56 | at_micros` then `arg`.
    slots: Box<[AtomicU64]>,
    head: AtomicU64,
    capacity: usize,
}

impl EventRing {
    /// Creates a ring holding up to `capacity` events (rounded up to a
    /// power of two, minimum 8).
    pub fn new(capacity: usize) -> EventRing {
        let capacity = capacity.max(8).next_power_of_two();
        EventRing {
            slots: (0..capacity * 2).map(|_| AtomicU64::new(0)).collect(),
            head: AtomicU64::new(0),
            capacity,
        }
    }

    /// Appends one event, overwriting the oldest if full. Lock-free.
    #[inline]
    pub fn push(&self, kind: EventKind, arg: u64) {
        let at = coarse_micros() & ((1 << 56) - 1);
        let index = self.head.fetch_add(1, Ordering::Relaxed) as usize % self.capacity;
        self.slots[index * 2 + 1].store(arg, Ordering::Relaxed);
        self.slots[index * 2].store(((kind as u64) << 56) | at, Ordering::Release);
    }

    /// The retained events, oldest first (up to `capacity`). Best-effort
    /// under concurrent writes: a slot being overwritten mid-dump may be
    /// skipped or carry the new event.
    pub fn dump(&self) -> Vec<Event> {
        let head = self.head.load(Ordering::Acquire);
        let len = (head as usize).min(self.capacity);
        let start = head - len as u64;
        let mut out = Vec::with_capacity(len);
        for logical in start..head {
            let index = logical as usize % self.capacity;
            let word = self.slots[index * 2].load(Ordering::Acquire);
            let arg = self.slots[index * 2 + 1].load(Ordering::Relaxed);
            if let Some(kind) = EventKind::from_u8((word >> 56) as u8) {
                out.push(Event {
                    kind,
                    at_micros: word & ((1 << 56) - 1),
                    arg,
                });
            }
        }
        out
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.capacity)
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

/// Merges per-worker dumps into one `(worker, event)` series ordered by
/// coarse timestamp — the shape a panic dump prints.
pub fn merge_dumps(dumps: &[Vec<Event>]) -> Vec<(usize, Event)> {
    let mut out: Vec<(usize, Event)> = dumps
        .iter()
        .enumerate()
        .flat_map(|(worker, events)| events.iter().map(move |&e| (worker, e)))
        .collect();
    out.sort_by_key(|(_, e)| e.at_micros);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_edges_are_monotone_and_cover_u64() {
        let mut previous = None;
        for i in 0..BUCKETS {
            let upper = bucket_upper(i);
            if let Some(p) = previous {
                assert!(upper > p, "bucket {i} upper {upper} <= previous {p}");
            }
            previous = Some(upper);
        }
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
        for v in [16, 17, 1000, 1 << 20, u64::MAX / 3, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_upper(i) >= v);
            if i > 0 {
                assert!(bucket_upper(i - 1) < v);
            }
        }
    }

    #[test]
    fn quantile_overestimates_by_less_than_the_documented_bound() {
        let h = Histogram::new();
        let values: Vec<u64> = (1..=1000).map(|i| i * 37).collect();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        for q in [0.5f64, 0.9, 0.99, 0.999] {
            let exact = values[((q * 1000.0).ceil() as usize - 1).min(999)];
            let estimate = snap.quantile(q);
            assert!(estimate >= exact, "q={q}: {estimate} < {exact}");
            assert!(
                (estimate as f64) < exact as f64 * 1.0625,
                "q={q}: {estimate} vs exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_single_histogram_and_since_subtracts() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..500u64 {
            let target = if v % 2 == 0 { &a } else { &b };
            target.record(v * v);
            all.record(v * v);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
        assert_eq!(merged.since(&a.snapshot()), b.snapshot());
        assert_eq!(merged.since(&merged).count(), 0);
    }

    #[test]
    fn count_le_matches_cumulative_buckets() {
        let h = Histogram::new();
        for v in [1u64, 5, 100, 1000, 100_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count_le(0), 0);
        assert_eq!(snap.count_le(5), 2);
        assert_eq!(snap.count_le(u64::MAX), 5);
        let series = snap.cumulative_buckets();
        assert_eq!(series.len(), 5);
        assert_eq!(series.last().unwrap().1, 5);
    }

    #[test]
    fn ring_keeps_the_newest_events() {
        let ring = EventRing::new(8);
        for i in 0..20u64 {
            ring.push(EventKind::Steal, i);
        }
        let events = ring.dump();
        assert_eq!(events.len(), 8);
        assert_eq!(events.first().unwrap().arg, 12);
        assert_eq!(events.last().unwrap().arg, 19);
        assert!(events.windows(2).all(|w| w[0].at_micros <= w[1].at_micros));
    }

    #[test]
    fn concurrent_recorders_lose_no_counts() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 40_000);
    }
}
