//! **futurepipe** — a futures-based on-the-fly pipelining baseline.
//!
//! The paper (Section 1) contrasts Cilk-P's `pipe_while` with the scheme of
//! Blelloch and Reid-Miller, *Pipelining with futures* (SPAA 1997), in which
//! pipeline stages are coordinated by futures. Futures are more expressive —
//! nonlinear pipelines can be wired on the fly — but the paper notes that
//! "this generality can lead to unbounded space requirements to attain even
//! modest speedups". This crate implements that baseline so the claim can be
//! measured against PIPER on the same workloads:
//!
//! * [`future`] — write-once futures with blocking waits and continuation
//!   callbacks (the coordination primitive);
//! * [`pool`] — a shared-FIFO task pool (ready continuations run on any idle
//!   worker; deliberately *not* work-stealing, to keep the baseline distinct
//!   from PIPER);
//! * [`pipeline`] — [`futures_pipe_while`], a drop-in scheduler for the same
//!   [`piper::PipelineIteration`] programs that `piper::pipe_while` runs,
//!   with no throttling by default and space instrumentation
//!   ([`FuturePipeStats::peak_live_iterations`]) exposing the runaway-pipeline
//!   behaviour that PIPER's throttling edge prevents.
//!
//! # Quick start
//!
//! ```
//! use futurepipe::{futures_pipe_while, FuturePipeOptions};
//! use piper::{Stage0, NodeOutcome, PipelineIteration};
//! use std::sync::{Arc, Mutex};
//!
//! struct Square { x: u64, out: Arc<Mutex<Vec<u64>>> }
//! impl PipelineIteration for Square {
//!     fn run_node(&mut self, stage: u64) -> NodeOutcome {
//!         match stage {
//!             1 => { self.x *= self.x; NodeOutcome::WaitFor(2) }
//!             2 => { self.out.lock().unwrap().push(self.x); NodeOutcome::Done }
//!             _ => unreachable!(),
//!         }
//!     }
//! }
//!
//! let out = Arc::new(Mutex::new(Vec::new()));
//! let sink = Arc::clone(&out);
//! futures_pipe_while(FuturePipeOptions::unthrottled(2), move |i| {
//!     if i == 5 { return Stage0::Stop; }
//!     Stage0::proceed(Square { x: i + 1, out: Arc::clone(&sink) })
//! });
//! assert_eq!(*out.lock().unwrap(), vec![1, 4, 9, 16, 25]);
//! ```

#![warn(missing_docs)]

pub mod future;
pub mod pipeline;
pub mod pool;

pub use future::{future, ready, when_all, Future, Promise};
pub use pipeline::{futures_pipe_while, FuturePipeOptions, FuturePipeStats};
pub use pool::TaskPool;
