//! A futures-coordinated on-the-fly pipeline executor.
//!
//! This is the baseline the paper contrasts PIPER with in Section 1: the
//! scheme of Blelloch and Reid-Miller (reference [6]) coordinates pipeline
//! stages with futures. It is *more* expressive than `pipe_while` — any dag
//! wiring of futures is allowed — but, as the paper notes (citing [7]),
//! "this generality can lead to unbounded space requirements to attain even
//! modest speedups". This executor reproduces that behaviour:
//!
//! * iterations of a linear pipeline are spawned **eagerly** by the producer,
//!   with no throttling edge limiting how far the first stage may run ahead;
//! * each cross and stage dependency is a future; a node schedules its
//!   successor by registering a continuation on the future it needs;
//! * [`FuturePipeStats::peak_live_iterations`] records the resulting space
//!   high-water mark, which grows with the iteration count whenever a later
//!   serial stage is the bottleneck — exactly the "runaway pipeline" PIPER's
//!   throttling precludes.
//!
//! The executor accepts the same [`PipelineIteration`] programs as
//! [`piper::pipe_while`], so every workload in this repository can be run on
//! both schedulers and their space compared (see the `fig_futures_space`
//! bench binary).
//!
//! An optional `throttle_limit` is provided purely for the comparison: with
//! it set, the producer blocks when the window fills, mimicking PIPER's
//! throttling edge (at the producer rather than in the scheduler).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use piper::{NodeOutcome, PipelineIteration, Stage0};

use crate::future::{ready, Future, Promise};
use crate::pool::TaskPool;

/// Options for [`futures_pipe_while`].
#[derive(Debug, Clone)]
pub struct FuturePipeOptions {
    /// Number of worker threads executing ready nodes.
    pub workers: usize,
    /// Maximum number of simultaneously live iterations, or `None` for the
    /// unthrottled futures baseline.
    pub throttle_limit: Option<usize>,
}

impl Default for FuturePipeOptions {
    fn default() -> Self {
        FuturePipeOptions {
            workers: 2,
            throttle_limit: None,
        }
    }
}

impl FuturePipeOptions {
    /// Options with `workers` worker threads and no throttling.
    pub fn unthrottled(workers: usize) -> Self {
        FuturePipeOptions {
            workers,
            throttle_limit: None,
        }
    }

    /// Options with `workers` worker threads and a producer-side window of
    /// `k` live iterations.
    pub fn throttled(workers: usize, k: usize) -> Self {
        FuturePipeOptions {
            workers,
            throttle_limit: Some(k.max(1)),
        }
    }
}

/// Execution statistics of one [`futures_pipe_while`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuturePipeStats {
    /// Iterations started (and completed).
    pub iterations: u64,
    /// Nodes executed across all iterations.
    pub nodes: u64,
    /// High-water mark of iterations that were started but not yet complete —
    /// the pipeline's space requirement in iteration frames.
    pub peak_live_iterations: u64,
    /// Tasks submitted to the futures pool (nodes plus continuations).
    pub tasks_spawned: u64,
}

/// Tracks how far an iteration has progressed so that the next iteration's
/// cross edges (including those into null nodes) can be resolved.
struct IterationProgress {
    /// The smallest stage number not yet known to be complete: the stage of
    /// the node currently running or waiting to run. Every stage below the
    /// frontier is complete or null.
    frontier: AtomicU64,
    done: AtomicBool,
    /// Waiters keyed by the stage whose completion they need.
    waiters: Mutex<Vec<(u64, Promise<()>)>>,
}

impl IterationProgress {
    fn new(first_stage: u64) -> Self {
        IterationProgress {
            frontier: AtomicU64::new(first_stage),
            done: AtomicBool::new(false),
            waiters: Mutex::new(Vec::new()),
        }
    }

    /// Returns a future fulfilled once stage `stage` of this iteration has
    /// completed (or turned out to be a null node the iteration skipped).
    fn completion_of(&self, stage: u64) -> Future<()> {
        if self.satisfied(stage) {
            return ready(());
        }
        let (promise, fut) = crate::future::future();
        {
            let mut waiters = self.waiters.lock().unwrap();
            // Re-check under the lock to avoid racing with an advance.
            if self.satisfied(stage) {
                drop(waiters);
                promise.fulfil(());
                return fut;
            }
            waiters.push((stage, promise));
        }
        fut
    }

    fn satisfied(&self, stage: u64) -> bool {
        self.done.load(Ordering::Acquire) || self.frontier.load(Ordering::Acquire) > stage
    }

    /// Announces that every stage below `next_stage` is complete or null.
    fn advance_to(&self, next_stage: u64) {
        self.frontier.fetch_max(next_stage, Ordering::AcqRel);
        self.release_waiters();
    }

    /// Marks the iteration complete, releasing every waiter.
    fn finish(&self) {
        self.done.store(true, Ordering::Release);
        self.release_waiters();
    }

    fn release_waiters(&self) {
        let released: Vec<Promise<()>> = {
            let mut waiters = self.waiters.lock().unwrap();
            let mut released = Vec::new();
            let mut kept = Vec::with_capacity(waiters.len());
            for (stage, promise) in waiters.drain(..) {
                if self.satisfied(stage) {
                    released.push(promise);
                } else {
                    kept.push((stage, promise));
                }
            }
            *waiters = kept;
            released
        };
        for promise in released {
            promise.fulfil(());
        }
    }
}

/// Shared bookkeeping for one pipeline execution.
struct ExecState {
    pool: Arc<TaskPool>,
    nodes: AtomicU64,
    peak_live: AtomicU64,
    window: Mutex<WindowState>,
    window_changed: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

struct WindowState {
    live: u64,
    completed: u64,
    spawned: u64,
}

impl ExecState {
    fn iteration_started(&self) {
        let mut window = self.window.lock().unwrap();
        window.live += 1;
        window.spawned += 1;
        let live = window.live;
        drop(window);
        self.peak_live.fetch_max(live, Ordering::Relaxed);
    }

    fn iteration_finished(&self) {
        let mut window = self.window.lock().unwrap();
        window.live -= 1;
        window.completed += 1;
        drop(window);
        self.window_changed.notify_all();
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// Executes a linear pipeline coordinated by futures.
///
/// The programming model is identical to [`piper::pipe_while`] — the same
/// producer closure and [`PipelineIteration`] implementations run unchanged —
/// but the scheduling is the futures baseline described in the
/// [module documentation](self).
pub fn futures_pipe_while<F, I>(options: FuturePipeOptions, mut producer: F) -> FuturePipeStats
where
    F: FnMut(u64) -> Stage0<I>,
    I: PipelineIteration,
{
    let pool = Arc::new(TaskPool::new(options.workers));
    let exec = Arc::new(ExecState {
        pool: Arc::clone(&pool),
        nodes: AtomicU64::new(0),
        peak_live: AtomicU64::new(0),
        window: Mutex::new(WindowState {
            live: 0,
            completed: 0,
            spawned: 0,
        }),
        window_changed: Condvar::new(),
        panic: Mutex::new(None),
    });

    let mut previous: Option<Arc<IterationProgress>> = None;
    let mut index = 0u64;
    loop {
        // Producer-side throttling (only when requested; the futures
        // baseline default is unthrottled).
        if let Some(limit) = options.throttle_limit {
            let mut window = exec.window.lock().unwrap();
            while window.live >= limit as u64 {
                window = exec.window_changed.wait(window).unwrap();
            }
        }
        if exec.panic.lock().unwrap().is_some() {
            break;
        }
        match producer(index) {
            Stage0::Stop => break,
            Stage0::Proceed {
                state,
                first_stage,
                wait,
            } => {
                let first_stage = first_stage.max(1);
                exec.iteration_started();
                let progress = Arc::new(IterationProgress::new(first_stage));
                let entry: Future<()> = match (&previous, wait) {
                    (Some(prev), true) => prev.completion_of(first_stage),
                    _ => ready(()),
                };
                let exec2 = Arc::clone(&exec);
                let progress2 = Arc::clone(&progress);
                let prev2 = previous.clone();
                entry.on_ready(move |_| {
                    schedule_node(exec2, progress2, prev2, state, first_stage);
                });
                previous = Some(progress);
                index += 1;
            }
        }
    }

    // Wait for every spawned iteration to drain.
    {
        let mut window = exec.window.lock().unwrap();
        while window.completed < window.spawned {
            window = exec.window_changed.wait(window).unwrap();
        }
    }
    let stats = FuturePipeStats {
        iterations: exec.window.lock().unwrap().completed,
        nodes: exec.nodes.load(Ordering::Relaxed),
        peak_live_iterations: exec.peak_live.load(Ordering::Relaxed),
        tasks_spawned: pool.submitted(),
    };
    let panic = exec.panic.lock().unwrap().take();
    drop(exec);
    drop(pool);
    if let Some(payload) = panic {
        std::panic::resume_unwind(payload);
    }
    stats
}

/// Submits the node at `stage` of the iteration tracked by `progress` to the
/// pool, continuing the iteration until it completes or suspends on a cross
/// edge.
fn schedule_node<I: PipelineIteration>(
    exec: Arc<ExecState>,
    progress: Arc<IterationProgress>,
    previous: Option<Arc<IterationProgress>>,
    state: I,
    stage: u64,
) {
    let pool = Arc::clone(&exec.pool);
    pool.submit(move || run_nodes(exec, progress, previous, state, stage));
}

fn run_nodes<I: PipelineIteration>(
    exec: Arc<ExecState>,
    progress: Arc<IterationProgress>,
    previous: Option<Arc<IterationProgress>>,
    mut state: I,
    mut stage: u64,
) {
    loop {
        if exec.panic.lock().unwrap().is_some() {
            // A sibling iteration panicked: drain without running more user
            // code so the executor can shut down cleanly.
            progress.finish();
            exec.iteration_finished();
            return;
        }
        let outcome = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            state.run_node(stage)
        })) {
            Ok(outcome) => outcome,
            Err(payload) => {
                exec.record_panic(payload);
                progress.finish();
                exec.iteration_finished();
                return;
            }
        };
        exec.nodes.fetch_add(1, Ordering::Relaxed);
        match outcome {
            NodeOutcome::ContinueTo(next) => {
                assert!(next > stage, "stage numbers must strictly increase");
                progress.advance_to(next);
                stage = next;
            }
            NodeOutcome::WaitFor(next) => {
                assert!(next > stage, "stage numbers must strictly increase");
                progress.advance_to(next);
                match &previous {
                    Some(prev) if !prev.satisfied(next) => {
                        // Suspend: re-schedule the rest of the iteration when
                        // the cross edge is satisfied.
                        let cross = prev.completion_of(next);
                        let exec2 = Arc::clone(&exec);
                        let progress2 = Arc::clone(&progress);
                        let prev2 = previous.clone();
                        cross.on_ready(move |_| {
                            schedule_node(exec2, progress2, prev2, state, next);
                        });
                        return;
                    }
                    _ => {
                        stage = next;
                    }
                }
            }
            NodeOutcome::Done => {
                progress.finish();
                exec.iteration_finished();
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct Sps {
        i: u64,
        out: Arc<Mutex<Vec<u64>>>,
        spin: u64,
    }

    impl PipelineIteration for Sps {
        fn run_node(&mut self, stage: u64) -> NodeOutcome {
            match stage {
                1 => {
                    let mut acc = self.i;
                    for k in 0..self.spin {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                    }
                    std::hint::black_box(acc);
                    NodeOutcome::WaitFor(2)
                }
                2 => {
                    self.out.lock().unwrap().push(self.i);
                    NodeOutcome::Done
                }
                _ => unreachable!(),
            }
        }
    }

    fn run_sps(options: FuturePipeOptions, n: u64, spin: u64) -> (Vec<u64>, FuturePipeStats) {
        let out = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&out);
        let stats = futures_pipe_while(options, move |i| {
            if i == n {
                return Stage0::Stop;
            }
            Stage0::proceed(Sps {
                i,
                out: Arc::clone(&sink),
                spin,
            })
        });
        let result = out.lock().unwrap().clone();
        (result, stats)
    }

    #[test]
    fn empty_pipeline_completes() {
        let stats = futures_pipe_while(FuturePipeOptions::default(), |_i| Stage0::<Sps>::Stop);
        assert_eq!(stats.iterations, 0);
        assert_eq!(stats.nodes, 0);
    }

    #[test]
    fn sps_pipeline_preserves_serial_output_order() {
        let (out, stats) = run_sps(FuturePipeOptions::unthrottled(4), 200, 200);
        assert_eq!(out, (0..200).collect::<Vec<_>>());
        assert_eq!(stats.iterations, 200);
        assert_eq!(stats.nodes, 400);
    }

    #[test]
    fn fully_serial_pipeline_is_ordered_even_with_many_workers() {
        struct Serial {
            i: u64,
            out: Arc<Mutex<Vec<u64>>>,
        }
        impl PipelineIteration for Serial {
            fn run_node(&mut self, stage: u64) -> NodeOutcome {
                match stage {
                    1 => NodeOutcome::WaitFor(2),
                    2 => NodeOutcome::WaitFor(3),
                    3 => {
                        self.out.lock().unwrap().push(self.i);
                        NodeOutcome::Done
                    }
                    _ => unreachable!(),
                }
            }
        }
        let out = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&out);
        let n = 150;
        futures_pipe_while(FuturePipeOptions::unthrottled(4), move |i| {
            if i == n {
                return Stage0::Stop;
            }
            Stage0::wait(Serial {
                i,
                out: Arc::clone(&sink),
            })
        });
        assert_eq!(*out.lock().unwrap(), (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn unthrottled_run_lets_the_producer_run_away() {
        // The serial output stage is the bottleneck (heavy spin in stage 1
        // keeps the workers busy), so the producer sprints ahead and the
        // space high-water mark approaches the iteration count — exactly the
        // runaway pipeline the paper's throttling prevents.
        let n = 400;
        let (_, stats) = run_sps(FuturePipeOptions::unthrottled(2), n, 2_000);
        assert!(
            stats.peak_live_iterations > n / 4,
            "unthrottled futures pipeline should run away (peak {} of {})",
            stats.peak_live_iterations,
            n
        );
    }

    #[test]
    fn producer_side_throttling_bounds_live_iterations() {
        for k in [1u64, 2, 8, 16] {
            let (out, stats) = run_sps(FuturePipeOptions::throttled(3, k as usize), 120, 500);
            assert_eq!(out.len(), 120);
            assert!(
                stats.peak_live_iterations <= k,
                "K={k}: peak {}",
                stats.peak_live_iterations
            );
        }
    }

    #[test]
    fn stage_skipping_entry_and_varying_stage_counts_work() {
        struct Skipper {
            i: u64,
            log: Arc<Mutex<Vec<(u64, u64)>>>,
        }
        impl PipelineIteration for Skipper {
            fn run_node(&mut self, stage: u64) -> NodeOutcome {
                self.log.lock().unwrap().push((self.i, stage));
                if self.i.is_multiple_of(2) {
                    match stage {
                        s if s == 1 + self.i => NodeOutcome::WaitFor(100),
                        100 => NodeOutcome::Done,
                        _ => unreachable!(),
                    }
                } else {
                    NodeOutcome::Done
                }
            }
        }
        let log = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&log);
        let n = 40;
        let stats = futures_pipe_while(FuturePipeOptions::unthrottled(3), move |i| {
            if i == n {
                return Stage0::Stop;
            }
            Stage0::into_stage(
                Skipper {
                    i,
                    log: Arc::clone(&sink),
                },
                1 + i,
                i % 3 == 0,
            )
        });
        assert_eq!(stats.iterations, n);
        let log = log.lock().unwrap();
        for i in 0..n {
            let stages: Vec<u64> = log
                .iter()
                .filter(|(it, _)| *it == i)
                .map(|(_, s)| *s)
                .collect();
            if i % 2 == 0 {
                assert_eq!(stages, vec![1 + i, 100]);
            } else {
                assert_eq!(stages, vec![1 + i]);
            }
        }
    }

    #[test]
    fn panic_in_a_node_propagates_after_draining() {
        struct Panicky {
            i: u64,
        }
        impl PipelineIteration for Panicky {
            fn run_node(&mut self, _stage: u64) -> NodeOutcome {
                if self.i == 7 {
                    panic!("futures node panic");
                }
                NodeOutcome::Done
            }
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            futures_pipe_while(FuturePipeOptions::unthrottled(2), move |i| {
                if i == 20 {
                    return Stage0::Stop;
                }
                Stage0::wait(Panicky { i })
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn same_program_runs_on_piper_and_futures_with_equal_output() {
        // The two schedulers accept identical programs; outputs must match.
        let run_futures = || {
            let out = Arc::new(Mutex::new(Vec::new()));
            let sink = Arc::clone(&out);
            futures_pipe_while(FuturePipeOptions::unthrottled(3), move |i| {
                if i == 64 {
                    return Stage0::Stop;
                }
                Stage0::proceed(Sps {
                    i,
                    out: Arc::clone(&sink),
                    spin: 50,
                })
            });
            let result: Vec<_> = out.lock().unwrap().clone();
            result
        };
        let run_piper = || {
            let pool = piper::ThreadPool::new(3);
            let out = Arc::new(Mutex::new(Vec::new()));
            let sink = Arc::clone(&out);
            pool.pipe_while(piper::PipeOptions::default(), move |i| {
                if i == 64 {
                    return Stage0::Stop;
                }
                Stage0::proceed(Sps {
                    i,
                    out: Arc::clone(&sink),
                    spin: 50,
                })
            });
            let result: Vec<_> = out.lock().unwrap().clone();
            result
        };
        assert_eq!(run_futures(), run_piper());
    }
}
