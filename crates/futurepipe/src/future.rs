//! Write-once futures with callback chaining.
//!
//! Blelloch and Reid-Miller's pipelining scheme (SPAA 1997, cited as [6] in
//! the paper) coordinates pipeline stages with *futures*: a stage's output is
//! a future, and consumers either block on it or attach a continuation. This
//! module provides that primitive — a single-assignment cell supporting both
//! blocking [`Future::wait`] and non-blocking [`Future::on_ready`]
//! continuations — with no scheduler policy attached, so the executor in
//! [`crate::pipeline`] can decide when continuations run.

use std::sync::{Arc, Condvar, Mutex};

/// Continuations registered before fulfilment.
type Callback<T> = Box<dyn FnOnce(&T) + Send>;

struct Inner<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

enum State<T> {
    /// Not yet fulfilled; callbacks wait here.
    Pending(Vec<Callback<T>>),
    /// Fulfilled with a value.
    Ready(Arc<T>),
}

/// The write side of a future. Dropping a promise without fulfilling it
/// leaves waiters pending forever, so executors must always fulfil.
pub struct Promise<T> {
    inner: Arc<Inner<T>>,
}

/// The read side of a future: clonable, waitable, and composable through
/// [`Future::on_ready`].
pub struct Future<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Future<T> {
    fn clone(&self) -> Self {
        Future {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Creates a connected promise/future pair.
pub fn future<T>() -> (Promise<T>, Future<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State::Pending(Vec::new())),
        ready: Condvar::new(),
    });
    (
        Promise {
            inner: Arc::clone(&inner),
        },
        Future { inner },
    )
}

/// Creates a future that is already fulfilled with `value`.
pub fn ready<T>(value: T) -> Future<T> {
    let (promise, fut) = future();
    promise.fulfil(value);
    fut
}

impl<T> Promise<T> {
    /// Fulfils the future, running any registered continuations on the
    /// calling thread (the executor decides where fulfilment happens, which
    /// is where continuations should run).
    ///
    /// # Panics
    ///
    /// Panics if the future was already fulfilled: futures are
    /// single-assignment.
    pub fn fulfil(self, value: T) {
        let callbacks = {
            let mut state = self.inner.state.lock().unwrap();
            match std::mem::replace(&mut *state, State::Ready(Arc::new(value))) {
                State::Pending(callbacks) => callbacks,
                State::Ready(_) => panic!("future fulfilled twice"),
            }
        };
        self.inner.ready.notify_all();
        if !callbacks.is_empty() {
            let value = {
                let state = self.inner.state.lock().unwrap();
                match &*state {
                    State::Ready(v) => Arc::clone(v),
                    State::Pending(_) => unreachable!(),
                }
            };
            for cb in callbacks {
                cb(&value);
            }
        }
    }
}

impl<T> Future<T> {
    /// True if the future has been fulfilled.
    pub fn is_ready(&self) -> bool {
        matches!(&*self.inner.state.lock().unwrap(), State::Ready(_))
    }

    /// Returns the value if already fulfilled.
    pub fn try_get(&self) -> Option<Arc<T>> {
        match &*self.inner.state.lock().unwrap() {
            State::Ready(v) => Some(Arc::clone(v)),
            State::Pending(_) => None,
        }
    }

    /// Blocks the calling thread until the future is fulfilled and returns
    /// the value.
    pub fn wait(&self) -> Arc<T> {
        let mut state = self.inner.state.lock().unwrap();
        loop {
            match &*state {
                State::Ready(v) => return Arc::clone(v),
                State::Pending(_) => {
                    state = self.inner.ready.wait(state).unwrap();
                }
            }
        }
    }

    /// Runs `callback` with the value: immediately if the future is already
    /// fulfilled, otherwise at fulfilment time on the fulfilling thread.
    pub fn on_ready(&self, callback: impl FnOnce(&T) + Send + 'static) {
        let mut callback = Some(callback);
        let immediate = {
            let mut state = self.inner.state.lock().unwrap();
            match &mut *state {
                State::Ready(v) => Some(Arc::clone(v)),
                State::Pending(callbacks) => {
                    let cb = callback.take().expect("callback registered once");
                    callbacks.push(Box::new(cb));
                    None
                }
            }
        };
        if let Some(value) = immediate {
            let cb = callback.take().expect("callback ran once");
            cb(&value);
        }
    }
}

/// Runs `continuation` once every future in `deps` is fulfilled. The
/// continuation runs immediately on the calling thread if all dependencies
/// are already ready, otherwise on the thread that fulfils the last one.
pub fn when_all<T: Send + Sync + 'static>(
    deps: &[Future<T>],
    continuation: impl FnOnce() + Send + 'static,
) {
    use std::sync::atomic::{AtomicUsize, Ordering};
    if deps.is_empty() {
        continuation();
        return;
    }
    let remaining = Arc::new(AtomicUsize::new(deps.len()));
    let continuation = Arc::new(Mutex::new(Some(continuation)));
    for dep in deps {
        let remaining = Arc::clone(&remaining);
        let continuation = Arc::clone(&continuation);
        dep.on_ready(move |_| {
            if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                let f = continuation
                    .lock()
                    .unwrap()
                    .take()
                    .expect("when_all continuation runs exactly once");
                f();
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn wait_sees_value_fulfilled_from_another_thread() {
        let (promise, fut) = future::<u64>();
        let handle = thread::spawn(move || *fut.wait());
        thread::sleep(std::time::Duration::from_millis(10));
        promise.fulfil(42);
        assert_eq!(handle.join().unwrap(), 42);
    }

    #[test]
    fn try_get_and_is_ready_track_fulfilment() {
        let (promise, fut) = future::<String>();
        assert!(!fut.is_ready());
        assert!(fut.try_get().is_none());
        promise.fulfil("done".to_string());
        assert!(fut.is_ready());
        assert_eq!(*fut.try_get().unwrap(), "done");
    }

    #[test]
    fn on_ready_runs_immediately_if_already_fulfilled() {
        let fut = ready(7u64);
        let seen = Arc::new(AtomicU64::new(0));
        let sink = Arc::clone(&seen);
        fut.on_ready(move |v| sink.store(*v, Ordering::SeqCst));
        assert_eq!(seen.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn on_ready_runs_at_fulfilment_otherwise() {
        let (promise, fut) = future::<u64>();
        let seen = Arc::new(AtomicU64::new(0));
        let sink = Arc::clone(&seen);
        fut.on_ready(move |v| sink.store(*v, Ordering::SeqCst));
        assert_eq!(seen.load(Ordering::SeqCst), 0);
        promise.fulfil(9);
        assert_eq!(seen.load(Ordering::SeqCst), 9);
    }

    #[test]
    fn multiple_callbacks_all_run() {
        let (promise, fut) = future::<u64>();
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let count = Arc::clone(&count);
            fut.on_ready(move |_| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        promise.fulfil(1);
        assert_eq!(count.load(Ordering::SeqCst), 10);
    }

    #[test]
    #[should_panic(expected = "fulfilled twice")]
    fn double_fulfilment_panics() {
        let (promise, fut) = future::<u64>();
        promise.fulfil(1);
        // Recreate a promise over the same inner cell to simulate a buggy
        // executor fulfilling twice.
        let bogus = Promise {
            inner: Arc::clone(&fut.inner),
        };
        bogus.fulfil(2);
    }

    #[test]
    fn when_all_fires_after_the_last_dependency() {
        let (p1, f1) = future::<u64>();
        let (p2, f2) = future::<u64>();
        let (p3, f3) = future::<u64>();
        let fired = Arc::new(AtomicUsize::new(0));
        let sink = Arc::clone(&fired);
        when_all(&[f1, f2, f3], move || {
            sink.fetch_add(1, Ordering::SeqCst);
        });
        p1.fulfil(1);
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        p3.fulfil(3);
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        p2.fulfil(2);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn when_all_with_no_dependencies_fires_immediately() {
        let fired = Arc::new(AtomicUsize::new(0));
        let sink = Arc::clone(&fired);
        when_all::<u64>(&[], move || {
            sink.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn many_threads_waiting_on_one_future_all_wake() {
        let (promise, fut) = future::<u64>();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let fut = fut.clone();
            handles.push(thread::spawn(move || *fut.wait()));
        }
        promise.fulfil(123);
        for h in handles {
            assert_eq!(h.join().unwrap(), 123);
        }
    }
}
