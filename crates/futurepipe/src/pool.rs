//! A small shared-queue task pool for the futures executor.
//!
//! The Blelloch–Reid-Miller-style baseline does not need (and historically
//! did not have) a work-stealing scheduler: stages become ready when their
//! futures are fulfilled and any idle worker may run them. A single shared
//! FIFO queue with a condition variable captures that model and keeps the
//! baseline clearly distinct from PIPER's per-worker deques.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type TaskFn = Box<dyn FnOnce() + Send>;

/// Queue state protected by a single mutex so that the sleep/wake protocol
/// has no lost-wakeup windows.
struct QueueState {
    queue: VecDeque<TaskFn>,
    /// Tasks currently executing on some worker.
    running: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signals workers that a task arrived or shutdown began.
    work_available: Condvar,
    /// Signals `wait_idle` callers that the pool may have drained.
    maybe_idle: Condvar,
    /// Tasks ever submitted (for statistics).
    submitted: AtomicU64,
    /// High-water mark of queued-but-not-started tasks.
    peak_queue_len: AtomicUsize,
}

/// A fixed-size pool of worker threads executing submitted closures FIFO.
pub struct TaskPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl TaskPool {
    /// Spawns `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                running: 0,
                shutdown: false,
            }),
            work_available: Condvar::new(),
            maybe_idle: Condvar::new(),
            submitted: AtomicU64::new(0),
            peak_queue_len: AtomicUsize::new(0),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("futurepipe-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn futurepipe worker")
            })
            .collect();
        TaskPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a task for execution.
    pub fn submit(&self, task: impl FnOnce() + Send + 'static) {
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        let len = {
            let mut state = self.shared.state.lock().unwrap();
            state.queue.push_back(Box::new(task));
            state.queue.len()
        };
        self.shared.peak_queue_len.fetch_max(len, Ordering::Relaxed);
        self.shared.work_available.notify_one();
    }

    /// Blocks until the queue is empty and no task is running.
    ///
    /// Only meaningful when the caller knows no further tasks will be
    /// submitted from outside the pool (tasks submitted *by* running tasks
    /// are awaited correctly).
    pub fn wait_idle(&self) {
        let mut state = self.shared.state.lock().unwrap();
        while !(state.queue.is_empty() && state.running == 0) {
            state = self.shared.maybe_idle.wait(state).unwrap();
        }
    }

    /// Total tasks submitted so far.
    pub fn submitted(&self) -> u64 {
        self.shared.submitted.load(Ordering::Relaxed)
    }

    /// High-water mark of tasks queued but not yet started.
    pub fn peak_queue_len(&self) -> usize {
        self.shared.peak_queue_len.load(Ordering::Relaxed)
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.work_available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(task) = state.queue.pop_front() {
                    state.running += 1;
                    break task;
                }
                if state.shutdown {
                    return;
                }
                state = shared.work_available.wait(state).unwrap();
            }
        };
        task();
        {
            let mut state = shared.state.lock().unwrap();
            state.running -= 1;
        }
        shared.maybe_idle.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn all_submitted_tasks_run() {
        let pool = TaskPool::new(4);
        let count = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let count = Arc::clone(&count);
            pool.submit(move || {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(count.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn tasks_submitted_by_tasks_are_awaited() {
        let pool = Arc::new(TaskPool::new(3));
        let count = Arc::new(AtomicU64::new(0));
        {
            let pool2 = Arc::clone(&pool);
            let count = Arc::clone(&count);
            pool.submit(move || {
                for _ in 0..50 {
                    let count = Arc::clone(&count);
                    pool2.submit(move || {
                        count.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }
        pool.wait_idle();
        assert_eq!(count.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn wait_idle_on_an_empty_pool_returns_immediately() {
        let pool = TaskPool::new(2);
        pool.wait_idle();
        assert_eq!(pool.submitted(), 0);
    }

    #[test]
    fn single_thread_pool_preserves_fifo_order() {
        let pool = TaskPool::new(1);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..100u32 {
            let log = Arc::clone(&log);
            pool.submit(move || log.lock().unwrap().push(i));
        }
        pool.wait_idle();
        assert_eq!(*log.lock().unwrap(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peak_queue_len_reflects_backlog() {
        let pool = TaskPool::new(1);
        // Block the only worker so submissions pile up.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let gate = Arc::clone(&gate);
            pool.submit(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            });
        }
        for _ in 0..64 {
            pool.submit(|| {});
        }
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        pool.wait_idle();
        assert!(pool.peak_queue_len() >= 64);
        assert_eq!(pool.submitted(), 65);
    }

    #[test]
    fn dropping_the_pool_joins_workers() {
        let count = Arc::new(AtomicU64::new(0));
        {
            let pool = TaskPool::new(2);
            for _ in 0..100 {
                let count = Arc::clone(&count);
                pool.submit(move || {
                    count.fetch_add(1, Ordering::SeqCst);
                });
            }
            pool.wait_idle();
        } // drop joins
        assert_eq!(count.load(Ordering::SeqCst), 100);
    }
}
