//! Offline shim for the subset of the `proptest` 1.x API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace pins
//! `proptest` to this in-tree implementation via `[workspace.dependencies]`
//! (see `crates/devshims/README.md`). It implements honest property-based
//! testing — deterministic pseudo-random generation, configurable case
//! counts, failing-input reporting — over the API surface the test suites
//! use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]`,
//! * [`strategy::Strategy`] with `prop_map`, [`prelude::Just`],
//!   [`prelude::any`], range and tuple strategies,
//! * [`collection::vec`], [`prop_oneof!`] (weighted and unweighted), and
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! It does **not** shrink failing inputs; it reports the full failing input
//! and the deterministic seed instead.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of pseudo-random values of type `Value`.
    ///
    /// Generic combinators carry `where Self: Sized` so the trait stays
    /// object-safe: [`Union`] (the engine behind [`crate::prop_oneof!`])
    /// stores heterogeneous strategies as `Box<dyn Strategy<Value = V>>`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<T> Strategy for core::ops::Range<T>
    where
        T: rand::SampleUniform + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.sample_range(self.clone())
        }
    }

    impl<T> Strategy for core::ops::RangeInclusive<T>
    where
        T: rand::SampleUniform + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.sample_range(self.clone())
        }
    }

    macro_rules! impl_strategy_for_tuple {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_strategy_for_tuple!(A / 0);
    impl_strategy_for_tuple!(A / 0, B / 1);
    impl_strategy_for_tuple!(A / 0, B / 1, C / 2);
    impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3);
    impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

    /// Weighted choice between strategies with a common value type; the
    /// engine behind [`crate::prop_oneof!`].
    pub struct Union<V> {
        variants: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total_weight: u64,
    }

    impl<V> Union<V> {
        /// Builds a union; every weight must be positive.
        pub fn new(variants: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            assert!(
                !variants.is_empty(),
                "prop_oneof! needs at least one variant"
            );
            let total_weight = variants.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
            Union {
                variants,
                total_weight,
            }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.sample_range(0..self.total_weight);
            for (weight, strategy) in &self.variants {
                if pick < u64::from(*weight) {
                    return strategy.generate(rng);
                }
                pick -= u64::from(*weight);
            }
            unreachable!("weighted pick out of range")
        }
    }

    /// Values with a canonical "anything goes" strategy, selected with
    /// [`any`].
    pub trait Arbitrary {
        /// Generates an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy for any value of `T` (integers span the full range).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for vectors whose length is drawn from `sizes` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, sizes: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        sizes: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.sample_range(self.sizes.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SampleRange, SampleUniform, SeedableRng};

    /// Configuration for a [`crate::proptest!`] block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property (overridable at run
        /// time with the `PROPTEST_CASES` environment variable).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Resolves the case count, honouring `PROPTEST_CASES`.
        pub fn resolved_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => v.parse().unwrap_or(self.cases),
                Err(_) => self.cases,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The deterministic generator threaded through every strategy.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// A generator for case `case` of the property named `name`; the
        /// same `(name, case)` pair always yields the same stream.
        pub fn for_case(name: &str, case: u64) -> Self {
            // FNV-1a over the property name, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Samples uniformly from `range`.
        pub fn sample_range<T, R>(&mut self, range: R) -> T
        where
            T: SampleUniform,
            R: SampleRange<T>,
        {
            self.inner.gen_range(range)
        }
    }

    /// Runs `body` for every generated case of property `name`.
    ///
    /// `generate` produces `(input_debug, run)` pairs; on panic the failing
    /// case index and input are reported before the panic is propagated, so
    /// failures are reproducible from the printed case number.
    pub fn run_cases(
        name: &str,
        config: &ProptestConfig,
        mut case_fn: impl FnMut(&mut TestRng) -> (String, Box<dyn FnOnce()>),
    ) {
        let cases = config.resolved_cases();
        for case in 0..u64::from(cases) {
            let mut rng = TestRng::for_case(name, case);
            let (input, run) = case_fn(&mut rng);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
            if let Err(panic) = outcome {
                eprintln!(
                    "proptest: property `{name}` failed at case {case}/{cases} \
                     (rerun deterministically; shrinking is not implemented)\n\
                     failing input: {input}"
                );
                std::panic::resume_unwind(panic);
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property, reporting the generated inputs on
/// failure (via the harness in [`test_runner::run_cases`]).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Weighted (`w => strategy`) or uniform choice between strategies sharing
/// a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, Box::new($strategy) as Box<dyn $crate::strategy::Strategy<Value = _>>),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, Box::new($strategy) as Box<dyn $crate::strategy::Strategy<Value = _>>),)+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let property = concat!(module_path!(), "::", stringify!($name));
                $crate::test_runner::run_cases(property, &config, |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), rng);)+
                    let input = format!(
                        concat!($(stringify!($arg), " = {:?}  "),+),
                        $(&$arg),+
                    );
                    (input, Box::new(move || { let _ = $body; }))
                });
            }
        )*
    };
}
