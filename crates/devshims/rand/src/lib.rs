//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace pins
//! `rand` to this in-tree implementation via `[workspace.dependencies]`
//! (see `crates/devshims/README.md`). It provides:
//!
//! * [`rngs::StdRng`] — a deterministic, seedable generator (splitmix64
//!   seeding into xoshiro256++, the same construction family the real
//!   `StdRng` draws from),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_range`] over integer and float ranges (half-open and
//!   inclusive), and [`Rng::gen_bool`].
//!
//! Streams are *not* bit-compatible with upstream `rand`; callers in this
//! workspace only rely on determinism for a fixed seed, which holds.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range called with an empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// The object-safe core of a random generator: a source of 64 random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from the given range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Maps 64 random bits to a float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo bias of the plain variant is irrelevant for the
                // test/workload generators this shim serves.
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((low as $wide).wrapping_add(r as $wide)) as $t
            }
            fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                if low == <$t>::MIN && high == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                Self::sample_half_open(rng, low, high.wrapping_add(1))
            }
        }
    )*};
}

impl_sample_uniform_int! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                let v = low + (high - low) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= high { low } else { v }
            }
            fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                low + (high - low) * u
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 stream to fill the state, as recommended by the
            // xoshiro authors for seeding from a small seed.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(1usize..6);
            assert!((1..6).contains(&v));
            let w = rng.gen_range(-3i16..=3);
            assert!((-3..=3).contains(&w));
            let f = rng.gen_range(-15.0f64..15.0);
            assert!((-15.0..15.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits = {hits}");
    }
}
