//! Offline shim for the subset of the `criterion` 0.5 API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace pins
//! `criterion` to this in-tree implementation via
//! `[workspace.dependencies]` (see `crates/devshims/README.md`). It is a
//! real (if statistically simple) measurement harness: warm-up, fixed
//! sample count, min/mean/max wall-clock reporting. The output format is
//! close enough to criterion's to be grep-able by the same tooling.
//!
//! Supported surface: [`Criterion::default`], [`Criterion::sample_size`],
//! [`Criterion::warm_up_time`], [`Criterion::measurement_time`],
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`],
//! [`criterion_group!`] (both forms) and [`criterion_main!`].

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        // `cargo bench` passes `--bench`; `cargo test --benches` passes
        // `--test`, where each benchmark should run once as a smoke check.
        let test_mode = args.iter().any(|a| a == "--test");
        let filter = args.iter().skip(1).find(|a| !a.starts_with("--")).cloned();
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            filter,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the total measurement duration per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            config: BenchConfig {
                sample_size: self.sample_size,
                warm_up_time: self.warm_up_time,
                measurement_time: self.measurement_time,
                test_mode: self.test_mode,
            },
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

struct BenchConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

/// Times a closure over repeated iterations.
pub struct Bencher {
    config: BenchConfig,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `f`, storing one duration per sample.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.config.test_mode {
            black_box(f());
            return;
        }

        // Warm up and estimate the cost of one iteration.
        let warm_up_start = Instant::now();
        let mut warm_up_iters: u64 = 0;
        while warm_up_start.elapsed() < self.config.warm_up_time {
            black_box(f());
            warm_up_iters += 1;
        }
        let per_iter = warm_up_start.elapsed().as_nanos().max(1) / u128::from(warm_up_iters.max(1));

        // Split the measurement budget into samples of >= 1 iteration.
        let budget = self.config.measurement_time.as_nanos();
        let per_sample = budget / self.config.sample_size as u128;
        let iters = (per_sample / per_iter.max(1)).clamp(1, u128::from(u64::MAX)) as u64;

        self.samples.clear();
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / iters.max(1) as u32);
        }
    }

    fn report(&self, id: &str) {
        if self.config.test_mode {
            println!("{id}: ok (smoke)");
            return;
        }
        if self.samples.is_empty() {
            println!("{id}: no samples recorded");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{id:<48} time: [{} {} {}]",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: either
/// `criterion_group!(name, target, ..)` or the
/// `name = ..; config = ..; targets = ..` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
