//! The ferret workload: content-based image similarity search as the
//! classic serial–parallel–serial pipeline of Figure 1, with a look at the
//! work/span analysis of the recorded dag.
//!
//! Run with: `cargo run --release --example ferret_search`

use std::time::Instant;

use onthefly_pipeline::pipedag;
use onthefly_pipeline::piper::{PipeOptions, ThreadPool};
use onthefly_pipeline::workloads::ferret;

fn main() {
    let config = ferret::FerretConfig::default();
    println!(
        "ferret example: {} queries against {} database images",
        config.queries, config.database_size
    );
    let index = ferret::build_index(&config);

    let t = Instant::now();
    let serial = ferret::run_serial(&config, &index);
    println!("serial search:  {:>7.3}s", t.elapsed().as_secs_f64());

    let pool = ThreadPool::builder().build();
    let t = Instant::now();
    let parallel = ferret::run_piper(
        &config,
        &index,
        &pool,
        PipeOptions::with_throttle(10 * pool.num_threads()),
    );
    println!(
        "PIPER search:   {:>7.3}s on {} worker(s)",
        t.elapsed().as_secs_f64(),
        pool.num_threads()
    );
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(parallel.iter()) {
        assert_eq!(a, b, "pipelined results must match serial");
    }

    // Cilkview-style analysis of the recorded pipeline dag.
    let spec = ferret::record_spec(&config, &index);
    let analysis = pipedag::analyze_unthrottled(&spec);
    println!(
        "recorded dag: work {:.1} ms, span {:.1} ms, parallelism {:.1}",
        analysis.work as f64 / 1e6,
        analysis.span as f64 / 1e6,
        analysis.parallelism()
    );
    println!("(parallelism >> P means the pipeline scales linearly on P workers, per the paper's analysis)");

    let best = &parallel[0][0];
    println!(
        "query 0 best match: image {} at distance {:.4}",
        best.0, best.1
    );
}
