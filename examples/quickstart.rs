//! Quickstart: build a three-stage serial–parallel–serial pipeline with
//! `pipe_while`, run it on the PIPER work-stealing pool, and inspect the
//! scheduling statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::{Arc, Mutex};

use onthefly_pipeline::piper::{PipeOptions, StagedPipeline, ThreadPool};

fn main() {
    // A pool of P workers (the paper's evaluation machine had 16 cores; use
    // whatever this host offers).
    let pool = ThreadPool::builder().build();
    println!("running on {} worker(s)", pool.num_threads());

    // Stage 0 (the producer) reads "requests"; stage 1 hashes them in
    // parallel; stage 2 writes results out in order.
    let results = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&results);
    let mut next = 0u64;
    let total = 10_000u64;

    let stats = StagedPipeline::<(u64, u64)>::new()
        .parallel(|item| {
            // The heavy parallel stage: a toy hash chain.
            let mut acc = item.0;
            for round in 0..2_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(round);
            }
            item.1 = acc;
        })
        .serial(move |item| {
            // The serial output stage sees items in iteration order even
            // though the middle stage ran out of order.
            sink.lock().unwrap().push(item.1);
        })
        .run(&pool, PipeOptions::default(), move || {
            if next == total {
                return None;
            }
            next += 1;
            Some((next - 1, 0))
        });

    let results = results.lock().unwrap();
    println!(
        "processed {} items; first = {:x}, last = {:x}",
        results.len(),
        results[0],
        results[results.len() - 1]
    );
    println!(
        "pipeline stats: {} iterations, {} nodes, peak {} live iterations (throttle limit {}), {} tail-swaps",
        stats.iterations,
        stats.nodes,
        stats.peak_active_iterations,
        4 * pool.num_threads(),
        stats.tail_swaps
    );
    assert_eq!(results.len() as u64, total);
}
