//! The x264 workload: an on-the-fly pipeline whose shape depends on the
//! input data (frame types decide which rows wait on the previous frame,
//! and the motion-vector window shifts each iteration's stages).
//!
//! This is the pipeline that cannot be expressed in a construct-and-run
//! model such as TBB's — the paper's motivating example.
//!
//! Run with: `cargo run --release --example video_encoder`

use std::time::Instant;

use onthefly_pipeline::piper::{PipeOptions, ThreadPool};
use onthefly_pipeline::workloads::x264;

fn main() {
    let config = x264::X264Config {
        frames: 48,
        width: 128,
        height: 96,
        gop: 4,
        bframes: 1,
        ..Default::default()
    };
    println!(
        "encoding {} synthetic frames at {}x{} (gop {}, {} B-frame(s) between references)",
        config.frames, config.width, config.height, config.gop, config.bframes
    );

    let t = Instant::now();
    let serial = x264::run_serial(&config);
    println!("serial encode:  {:>7.3}s", t.elapsed().as_secs_f64());

    let pool = ThreadPool::builder().build();
    let t = Instant::now();
    let parallel = x264::run_piper(&config, &pool, PipeOptions::default());
    println!(
        "PIPER encode:   {:>7.3}s on {} worker(s)",
        t.elapsed().as_secs_f64(),
        pool.num_threads()
    );

    assert_eq!(
        serial, parallel,
        "pipelined encode must be bit-identical to serial"
    );

    let total_bytes: usize = parallel.iter().map(|r| r.payload_bytes).sum();
    let iframes = parallel.iter().filter(|r| r.is_iframe).count();
    let bframes: usize = parallel.iter().map(|r| r.bframes.len()).sum();
    println!(
        "encoded {} reference frames ({} I, {} P) + {} B-frames, {} payload bytes",
        parallel.len(),
        iframes,
        parallel.len() - iframes,
        bframes,
        total_bytes
    );
}
