//! Quickstart for serving pipeline jobs over the network (`piped`).
//!
//! Starts a `piped` server on an ephemeral loopback port (in production
//! you'd run the `piped` binary on another host), connects a client,
//! submits a dedup job and a pipe-fib job, verifies the streamed outputs
//! against the serial references, prints the executor metrics fetched
//! over the wire, and finishes with a graceful drain.
//!
//! ```sh
//! cargo run --release --example remote_client
//! ```

use onthefly_pipeline::piped::{
    PipedClient, PipedServer, ServerConfig, SubmitOptions, WireJobStatus,
};
use onthefly_pipeline::pipeserve::Priority;
use onthefly_pipeline::workloads;

fn main() {
    // 1. A server: one shared executor behind a TCP listener. The `piped`
    //    binary wraps exactly this (see `piped --help`).
    let server = PipedServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let handle = server.handle();
    std::thread::spawn(move || {
        let _ = server.serve();
    });
    println!("server listening on {addr}");
    println!(
        "servable workloads: {}",
        workloads::bytes::names().join(", ")
    );

    // 2. A client: one connection, any number of concurrent jobs.
    let client = PipedClient::connect(addr).expect("connect");

    // A dedup job: the input bytes are the stream to deduplicate.
    let dedup_input = workloads::dedup::DedupConfig::tiny().generate_input();
    let dedup = client
        .submit(
            &SubmitOptions::new("dedup")
                .priority(Priority::Interactive)
                .throttle(4),
            &dedup_input,
        )
        .expect("submit dedup");
    println!(
        "dedup accepted: ticket {} / server job {}",
        dedup.ticket(),
        dedup.job_id()
    );

    // A pipe-fib job: the input is a tiny parameter codec.
    let fib_input = workloads::bytes::pipefib_input(&workloads::pipefib::PipeFibConfig::tiny());
    let fib = client
        .submit(&SubmitOptions::new("pipefib"), &fib_input)
        .expect("submit pipefib");

    // 3. Outputs stream back while the jobs run; wait() hands over the
    //    complete byte stream with the terminal status.
    for (name, job, input) in [("dedup", dedup, dedup_input), ("pipefib", fib, fib_input)] {
        let outcome = job.wait().expect("wait");
        assert_eq!(outcome.status, WireJobStatus::Completed);
        let expected = (workloads::bytes::lookup(name).unwrap().serial)(&input).unwrap();
        assert_eq!(outcome.output, expected, "{name}: byte-identical to serial");
        println!(
            "{name}: {} output bytes in {:.2} ms, byte-identical to the serial reference",
            outcome.output.len(),
            outcome.latency.as_secs_f64() * 1e3
        );
    }

    // 4. Observability and graceful shutdown over the same wire.
    println!("metrics: {}", client.metrics_json().expect("metrics"));
    client.drain().expect("drain");
    println!("drained: running jobs finished, new submits now refused");
    handle.stop();
}
