//! Quickstart for the `pipeserve` multi-tenant pipeline executor.
//!
//! Runs a small service behind the content-addressed result cache,
//! submits a mixed set of jobs at different priorities through the one
//! [`Submit`] surface, cancels one mid-flight, replays a content-keyed
//! job to show a cache hit, and prints the per-job results plus the
//! service's aggregate metrics.
//!
//! ```sh
//! cargo run --release --example pipeline_service
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use onthefly_pipeline::piper::{NodeOutcome, PipeOptions, PipelineIteration, Stage0};
use onthefly_pipeline::pipeserve::{
    CachedService, ContentKey, JobSpec, OutputSink, PipeService, Priority, SinkLaunchFn, Submit,
};
use onthefly_pipeline::workloads;

/// A hand-written SPS iteration: square in parallel, emit in order.
struct Square {
    i: u64,
    out: Arc<Mutex<Vec<u64>>>,
}

impl PipelineIteration for Square {
    fn run_node(&mut self, stage: u64) -> NodeOutcome {
        match stage {
            1 => {
                self.i = self.i * self.i;
                NodeOutcome::WaitFor(2)
            }
            2 => {
                self.out.lock().unwrap().push(self.i);
                NodeOutcome::Done
            }
            _ => unreachable!(),
        }
    }
}

fn main() {
    // One shared pool, a global frame budget, a bounded queue — and a
    // content-addressed result cache in front. Plain submissions pass
    // straight through; keyed ones are cached and coalesced.
    let service = CachedService::new(
        PipeService::builder()
            .num_threads(4)
            .frame_budget(64)
            .max_queue(128)
            .build(),
    );
    println!("service: {service:?}");

    // 1. A latency-sensitive hand-written pipeline job.
    let squares = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&squares);
    let interactive = service
        .submit(
            JobSpec::new(PipeOptions::with_throttle(4), move |i| {
                if i == 10 {
                    return Stage0::Stop;
                }
                Stage0::proceed(Square {
                    i,
                    out: Arc::clone(&sink),
                })
            })
            .named("squares")
            .priority(Priority::Interactive),
        )
        .expect("submit squares");

    // 2. A real workload as a batch tenant: dedup, launched through the
    //    type-erased constructor the workload crate exports.
    let dedup_config = workloads::dedup::DedupConfig::tiny();
    let dedup_input = dedup_config.generate_input();
    let (dedup_launch, dedup_sink) = workloads::dedup::piper_launch(&dedup_config, &dedup_input);
    let dedup = service
        .submit(
            JobSpec::from_launch(PipeOptions::with_throttle(8), dedup_launch)
                .named("dedup")
                .priority(Priority::Batch),
        )
        .expect("submit dedup");

    // 3. An endless job we cancel cooperatively: the producer never stops
    //    on its own.
    let stop_probe = Arc::new(AtomicBool::new(false));
    let probe = Arc::clone(&stop_probe);
    let endless = service
        .submit(
            JobSpec::new(PipeOptions::with_throttle(2), move |i| {
                probe.store(true, Ordering::Release);
                Stage0::wait(Square {
                    i,
                    out: Arc::new(Mutex::new(Vec::new())),
                })
            })
            .named("endless")
            .priority(Priority::Normal),
        )
        .expect("submit endless");

    // Let the endless job start, then cancel it; it stops spawning
    // iterations within one iteration frame and drains cleanly.
    while !stop_probe.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_micros(100));
    }
    endless.cancel();

    println!("squares  -> {:?}", interactive.join());
    println!("         = {:?}", *squares.lock().unwrap());
    let dedup_result = dedup.join();
    println!(
        "dedup    -> {:?} ({} chunks archived)",
        dedup_result.is_completed(),
        dedup_sink.lock().unwrap().num_chunks()
    );
    println!("endless  -> {:?}", endless.join());

    // 4. The same dedup input as a *content-keyed* byte job, twice: the
    //    first run streams through a pipeline and is cached; the replay is
    //    answered from the cache — byte-identical, no pipeline launched.
    let byte_job = workloads::bytes::lookup("dedup").expect("registered workload");
    for round in 0..2 {
        let out = Arc::new(Mutex::new(Vec::new()));
        let sink_out = Arc::clone(&out);
        let sink: OutputSink = Box::new(move |chunk: checksum::buf::Chunk| {
            sink_out.lock().unwrap().extend_from_slice(&chunk)
        });
        let input = dedup_input.clone();
        let launch = byte_job.launch;
        let factory: SinkLaunchFn =
            Box::new(move |sink| launch(&input, sink).expect("input validated up front"));
        let keyed = service
            .submit(
                JobSpec::keyed(
                    PipeOptions::with_throttle(8),
                    ContentKey::new("dedup", &dedup_input),
                    sink,
                    factory,
                )
                .named("dedup-keyed"),
            )
            .expect("submit keyed dedup");
        println!(
            "keyed #{round} -> {:?} ({} archive bytes)",
            keyed.join().is_completed(),
            out.lock().unwrap().len()
        );
    }
    let stats = service.cache_stats();
    println!(
        "cache: hits={} misses={} coalesced={} entries={} bytes={}/{}",
        stats.hits, stats.misses, stats.coalesced, stats.entries, stats.bytes, stats.capacity_bytes
    );

    service.drain();
    let m = service.metrics();
    println!(
        "service metrics: submitted={} admitted={} completed={} cancelled={} \
         rejected={} peak_queue={} peak_frames={}/{} cache_hits={} coalesced={}",
        m.jobs_submitted,
        m.jobs_admitted,
        m.jobs_completed,
        m.jobs_cancelled,
        m.jobs_rejected,
        m.peak_queue_depth,
        m.peak_frames_in_use,
        m.frame_budget,
        m.cache_hits,
        m.coalesced,
    );
    let pm = service.inner().pool_metrics();
    println!(
        "pool metrics: pipes started={} completed={} cancelled={} steals={}",
        pm.pipes_started, pm.pipes_completed, pm.pipes_cancelled, pm.steals
    );
    service.into_inner().shutdown();
}
