//! On-the-fly pipeline structure: data-dependent dependencies and stage
//! skipping, the two things a construct-and-run pipeline (TBB-style) cannot
//! express and the reason the paper's x264 port needs Cilk-P.
//!
//! The example processes a stream of synthetic "messages". Each message is
//! either an *update* (applied to shared state through a `pipe_wait` stage
//! that serialises adjacent updates) or a *query* (read-only, runs entirely
//! in parallel via `pipe_continue` and never visits the update stage).
//! Urgent messages additionally skip the validation stage, so different
//! iterations execute different stage sets — the pipeline's shape emerges at
//! run time.
//!
//! Run with: `cargo run --release --example stage_skipping`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use onthefly_pipeline::piper::{NodeOutcome, PipeOptions, PipelineIteration, Stage0, ThreadPool};

/// Stage numbers, named as in Figure 2 of the paper.
const VALIDATE: u64 = 1;
const APPLY: u64 = 2;
const PUBLISH: u64 = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MessageKind {
    Update,
    Query,
    UrgentUpdate,
}

#[derive(Debug, Clone, Copy)]
struct Message {
    id: u64,
    kind: MessageKind,
    payload: u64,
}

/// Deterministic synthetic message stream.
fn message(id: u64) -> Message {
    let mix = id.wrapping_mul(0x9E3779B97F4A7C15);
    let kind = match mix % 5 {
        0 | 1 => MessageKind::Update,
        2 | 3 => MessageKind::Query,
        _ => MessageKind::UrgentUpdate,
    };
    Message {
        id,
        kind,
        payload: mix >> 8,
    }
}

struct Shared {
    /// The replicated state updates are applied to (in stream order).
    state: AtomicU64,
    /// Published log lines, in iteration order.
    log: Mutex<Vec<String>>,
    validated: AtomicU64,
    queries: AtomicU64,
}

struct MessageIteration {
    message: Message,
    shared: Arc<Shared>,
    observed_state: u64,
}

impl PipelineIteration for MessageIteration {
    fn run_node(&mut self, stage: u64) -> NodeOutcome {
        match stage {
            VALIDATE => {
                // Parallel validation: pure function of the payload.
                let mut acc = self.message.payload;
                for round in 0..500u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(round);
                }
                self.shared.validated.fetch_add(1, Ordering::Relaxed);
                match self.message.kind {
                    // Updates must be applied in order: cross edge (pipe_wait).
                    MessageKind::Update | MessageKind::UrgentUpdate => NodeOutcome::WaitFor(APPLY),
                    // Queries never touch the ordered stage: skip straight to
                    // PUBLISH without a cross edge (pipe_continue).
                    MessageKind::Query => NodeOutcome::ContinueTo(PUBLISH),
                }
            }
            APPLY => {
                // Ordered stage: applies the (commutative) update to the
                // shared state; adjacent update iterations are serialised by
                // the cross edge, and the atomic add keeps the aggregate
                // exact even across iterations separated by queries.
                let delta = self.message.payload | 1;
                let previous = self.shared.state.fetch_add(delta, Ordering::SeqCst);
                self.observed_state = previous.wrapping_add(delta);
                NodeOutcome::WaitFor(PUBLISH)
            }
            PUBLISH => {
                if self.message.kind == MessageKind::Query {
                    self.observed_state = self.shared.state.load(Ordering::SeqCst);
                    self.shared.queries.fetch_add(1, Ordering::Relaxed);
                }
                self.shared.log.lock().unwrap().push(format!(
                    "#{:<4} {:?}: state={:#x}",
                    self.message.id, self.message.kind, self.observed_state
                ));
                NodeOutcome::Done
            }
            other => unreachable!("unexpected stage {other}"),
        }
    }
}

fn main() {
    let pool = ThreadPool::builder().build();
    let total = 5_000u64;
    let shared = Arc::new(Shared {
        state: AtomicU64::new(0),
        log: Mutex::new(Vec::new()),
        validated: AtomicU64::new(0),
        queries: AtomicU64::new(0),
    });

    let producer_shared = Arc::clone(&shared);
    let stats = pool.pipe_while(PipeOptions::default(), move |i| {
        if i == total {
            return Stage0::Stop;
        }
        let message = message(i);
        // Urgent updates skip validation entirely: the iteration enters at
        // the APPLY stage directly (stage skipping on entry), still with a
        // cross edge so ordering is preserved.
        match message.kind {
            MessageKind::UrgentUpdate => Stage0::into_stage(
                MessageIteration {
                    message,
                    shared: Arc::clone(&producer_shared),
                    observed_state: 0,
                },
                APPLY,
                true,
            ),
            _ => Stage0::into_stage(
                MessageIteration {
                    message,
                    shared: Arc::clone(&producer_shared),
                    observed_state: 0,
                },
                VALIDATE,
                false,
            ),
        }
    });

    // Recompute the expected final state serially: every update must have
    // been applied exactly once, whatever interleaving the scheduler chose.
    let mut expected_state = 0u64;
    let mut expected_updates = 0u64;
    for i in 0..total {
        let m = message(i);
        if m.kind != MessageKind::Query {
            expected_state = expected_state.wrapping_add(m.payload | 1);
            expected_updates += 1;
        }
    }
    let log = shared.log.lock().unwrap();

    println!(
        "processed {total} messages on {} worker(s)",
        pool.num_threads()
    );
    println!(
        "  updates applied : {expected_updates} (final state {:#x}, expected {:#x})",
        shared.state.load(Ordering::SeqCst),
        expected_state
    );
    println!(
        "  validated       : {} (urgent updates skipped validation)",
        shared.validated.load(Ordering::Relaxed)
    );
    println!(
        "  queries answered: {}",
        shared.queries.load(Ordering::Relaxed)
    );
    println!(
        "  pipeline stats  : {} iterations, {} nodes, peak {} live, {} cross-edge suspensions",
        stats.iterations, stats.nodes, stats.peak_active_iterations, stats.cross_suspensions
    );
    println!("  first log lines :");
    for line in log.iter().take(5) {
        println!("    {line}");
    }

    assert_eq!(shared.state.load(Ordering::SeqCst), expected_state);
    assert_eq!(log.len() as u64, total);
}
