//! A Cilkview-style scalability analysis session over the paper's pipelines.
//!
//! The paper measures the parallelism of its dedup port with a modified
//! Cilkview (Section 10 reports 7.4) and reasons about ferret and the
//! pathological Figure 10 dag in closed form. This example does the same
//! end to end with the `pipedag` crate: it records/generates the dags,
//! prints work, span, parallelism, burdened parallelism and predicted
//! speedup ranges, classifies the stages (SPS / SSPS / hybrid), simulates
//! P-processor schedules, and writes Graphviz renderings next to the
//! binary's working directory.
//!
//! Run with: `cargo run --release --example pipeline_analysis`

use onthefly_pipeline::pipedag::{
    analyze, analyze_burdened, analyze_unthrottled, generators, signature, simulate_piper, to_dot,
    BurdenModel, DotOptions, PipelineSpec,
};
use onthefly_pipeline::workloads::{dedup, ferret, x264};

fn report(name: &str, spec: &PipelineSpec, throttle: usize) {
    let plain = analyze_unthrottled(spec);
    let throttled = analyze(spec, Some(throttle));
    let burdened = analyze_burdened(spec, &BurdenModel::default());

    println!("== {name} ==");
    println!(
        "  shape       : {} iterations, {} nodes, signature {}",
        plain.iterations,
        plain.nodes,
        signature(spec)
    );
    println!(
        "  work/span   : T1 = {}, T_inf = {}, parallelism = {:.2}",
        plain.work,
        plain.span,
        plain.parallelism()
    );
    println!(
        "  throttled   : K = {throttle}: span = {}, parallelism = {:.2}",
        throttled.span,
        throttled.work as f64 / throttled.span.max(1) as f64
    );
    println!(
        "  burdened    : span = {}, parallelism = {:.2} ({} burdened edges)",
        burdened.burdened_span,
        burdened.burdened_parallelism(),
        burdened.burdened_edges
    );
    print!("  est. speedup:");
    for p in [2usize, 4, 8, 16] {
        let est = burdened.estimate(p);
        print!("  P={p}: {:.1}–{:.1}", est.lower, est.upper);
    }
    println!();
    print!("  simulated   :");
    for p in [2usize, 4, 8, 16] {
        let sim = simulate_piper(spec, p, Some(throttle));
        print!("  P={p}: {:.2}x", sim.speedup_vs(plain.work));
    }
    println!("\n");
}

fn main() {
    // Ferret: the SPS pipeline of Figure 1, recorded from a real run of the
    // image-similarity workload.
    let ferret_cfg = ferret::FerretConfig::tiny();
    let index = ferret::build_index(&ferret_cfg);
    let ferret_spec = ferret::record_spec(&ferret_cfg, &index);
    report("ferret (recorded, Figure 1)", &ferret_spec, 40);

    // Dedup: the SSPS pipeline of Figure 4, recorded from a real run.
    let dedup_cfg = dedup::DedupConfig::tiny();
    let input = dedup_cfg.generate_input();
    let dedup_spec = dedup::record_spec(&dedup_cfg, &input);
    report("dedup (recorded, Figure 4 / Section 10)", &dedup_spec, 16);

    // x264: the on-the-fly dag of Figure 3 with stage skipping.
    let x264_cfg = x264::X264Config::tiny();
    let x264_spec = x264::build_spec(&x264_cfg, 50, 30, 5);
    report("x264 (Figure 3)", &x264_spec, 16);

    // The pathological nonuniform pipeline of Figure 10 / Theorem 13.
    let pathological = generators::pathological(1_000_000);
    report("pathological (Figure 10)", &pathological, 8);

    // Write DOT renderings for the two small structural figures.
    let fig1 = to_dot(&generators::sps(8, 1, 6, 1), &DotOptions::default());
    let fig3 = to_dot(
        &generators::x264_dag(6, 3, 2, 1, 3, 2, 3, 1),
        &DotOptions::default(),
    );
    for (path, dot) in [("figure1_sps.dot", fig1), ("figure3_x264.dot", fig3)] {
        match std::fs::write(path, &dot) {
            Ok(()) => println!(
                "wrote {path} ({} bytes) — render with `dot -Tsvg {path}`",
                dot.len()
            ),
            Err(e) => println!("could not write {path}: {e}"),
        }
    }
}
