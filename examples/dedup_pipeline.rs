//! The dedup workload end-to-end: deduplicating compression as an SSPS
//! pipeline, run serially, on PIPER, and on both baseline executors, with
//! output verification and a small comparison printout.
//!
//! Run with: `cargo run --release --example dedup_pipeline`

use std::time::Instant;

use onthefly_pipeline::baselines::{BindToStageConfig, ConstructAndRunConfig};
use onthefly_pipeline::piper::{PipeOptions, ThreadPool};
use onthefly_pipeline::workloads::dedup;

fn main() {
    let config = dedup::DedupConfig::default();
    let input = config.generate_input();
    println!(
        "dedup example: {} bytes of synthetic input ({}x repeated block)",
        input.len(),
        config.repeats
    );

    let t = Instant::now();
    let serial = dedup::run_serial(&config, &input);
    let t_serial = t.elapsed();
    assert_eq!(serial.decode().unwrap(), input, "archive must round-trip");
    println!(
        "serial:            {:>8.3}s   {} chunks, {} duplicates, {} bytes compressed",
        t_serial.as_secs_f64(),
        serial.num_chunks(),
        serial.num_duplicates(),
        serial.compressed_size()
    );

    let pool = ThreadPool::builder().build();
    let t = Instant::now();
    let piper_archive = dedup::run_piper(&config, &input, &pool, PipeOptions::default());
    println!("cilk-p (PIPER):    {:>8.3}s", t.elapsed().as_secs_f64());
    assert_eq!(piper_archive, serial);

    let t = Instant::now();
    let bts = dedup::run_bind_to_stage(&config, &input, BindToStageConfig::default());
    println!("pthreads-style:    {:>8.3}s", t.elapsed().as_secs_f64());
    assert_eq!(bts, serial);

    let t = Instant::now();
    let car = dedup::run_construct_and_run(&config, &input, ConstructAndRunConfig::default());
    println!("tbb-style:         {:>8.3}s", t.elapsed().as_secs_f64());
    assert_eq!(car, serial);

    println!("all executors produced bit-identical archives");
}
